//===- tests/core/ShardedHeapTest.cpp -------------------------------------===//
//
// Part of the DieHard reproduction (Berger & Zorn, PLDI 2006).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Tests for the sharded heap layer: single-shard equivalence with a lone
/// DieHardHeap, cross-thread frees routed to the owning shard, thread churn
/// beyond the shard count, per-partition lock concurrency, overflow routing
/// to sibling shards, stats aggregation, and the shared large-object path.
/// The multithreaded cases double as the TSan/ASan workload for the
/// sanitizer CI lanes.
///
//===----------------------------------------------------------------------===//

#include "core/ShardedHeap.h"

#include "core/HeapAdapter.h"
#include "core/SizeClass.h"
#include "workloads/SyntheticWorkload.h"

#include <gtest/gtest.h>

#include <cstring>
#include <mutex>
#include <thread>
#include <vector>

namespace diehard {
namespace {

ShardedHeapOptions smallOptions(size_t NumShards, uint64_t Seed = 42) {
  ShardedHeapOptions O;
  O.Heap.HeapSize = 96 * 1024 * 1024;
  O.Heap.Seed = Seed;
  O.NumShards = NumShards;
  return O;
}

ptrdiff_t offsetFromBase(const void *Ptr, const DieHardHeap &H) {
  return static_cast<const char *>(Ptr) -
         static_cast<const char *>(H.heapBase());
}

TEST(ShardedHeapTest, SingleShardMatchesDieHardHeapBitForBit) {
  // With one shard, the layer must reproduce a lone DieHardHeap exactly:
  // same seed, same RNG stream, same slot for every request. The replicated
  // framework depends on this equivalence for per-seed determinism.
  DieHardOptions Plain;
  Plain.HeapSize = 96 * 1024 * 1024;
  Plain.Seed = 42;
  DieHardHeap Reference(Plain);

  ShardedHeap Sharded(smallOptions(1));
  ASSERT_TRUE(Reference.isValid());
  ASSERT_TRUE(Sharded.isValid());
  ASSERT_EQ(Sharded.numShards(), 1u);
  EXPECT_EQ(Sharded.seed(), Reference.seed());

  const size_t Sizes[] = {8, 24, 100, 512, 16, 2048, 8000, 16384, 1, 333};
  std::vector<void *> FromReference, FromSharded;
  for (int Round = 0; Round < 50; ++Round)
    for (size_t Size : Sizes) {
      void *A = Reference.allocate(Size);
      void *B = Sharded.allocate(Size);
      ASSERT_NE(A, nullptr);
      ASSERT_NE(B, nullptr);
      ASSERT_EQ(offsetFromBase(A, Reference),
                offsetFromBase(B, Sharded.shard(0)))
          << "placement diverged for size " << Size;
      FromReference.push_back(A);
      FromSharded.push_back(B);
    }

  // Free every other object and allocate again: the streams must stay in
  // lockstep through frees too.
  for (size_t I = 0; I < FromReference.size(); I += 2) {
    Reference.deallocate(FromReference[I]);
    Sharded.deallocate(FromSharded[I]);
  }
  for (size_t Size : Sizes) {
    void *A = Reference.allocate(Size);
    void *B = Sharded.allocate(Size);
    ASSERT_EQ(offsetFromBase(A, Reference),
              offsetFromBase(B, Sharded.shard(0)));
  }
}

TEST(ShardedHeapTest, ResolvesShardCountAndDerivesSeeds) {
  ShardedHeap H(smallOptions(4));
  ASSERT_TRUE(H.isValid());
  EXPECT_EQ(H.numShards(), 4u);
  EXPECT_EQ(H.shard(0).seed(), 42u);
  for (size_t I = 1; I < H.numShards(); ++I)
    EXPECT_NE(H.shard(I).seed(), H.shard(0).seed())
        << "shard " << I << " must not share shard 0's stream";
}

TEST(ShardedHeapTest, ShardCountZeroUsesHardwareConcurrency) {
  ShardedHeap H(smallOptions(0));
  EXPECT_EQ(H.numShards(), ShardedHeap::defaultShardCount());
  EXPECT_GE(H.numShards(), 1u);
}

TEST(ShardedHeapTest, ClampsAbsurdShardCounts) {
  ShardedHeapOptions O = smallOptions(100000);
  O.Heap.HeapSize = 512 * 1024 * 1024; // Keep per-shard partitions usable.
  ShardedHeap H(O);
  EXPECT_EQ(H.numShards(), ShardedHeap::MaxShards);
}

TEST(ShardedHeapTest, EveryShardKeepsTheFullReservation) {
  // Hoard-style sizing: each shard reserves the full configured size, so a
  // single-threaded process does not lose capacity to sharding. Reference:
  // a lone DieHardHeap with the same options.
  DieHardOptions Plain;
  Plain.HeapSize = 96 * 1024 * 1024;
  Plain.Seed = 42;
  DieHardHeap Reference(Plain);

  ShardedHeap H(smallOptions(4));
  for (size_t I = 0; I < H.numShards(); ++I) {
    EXPECT_EQ(H.shard(I).heapBytes(), Reference.heapBytes());
    for (int C = 0; C < SizeClass::NumClasses; ++C)
      EXPECT_EQ(H.shard(I).thresholdForClass(C),
                Reference.thresholdForClass(C));
  }
}

TEST(ShardedHeapTest, CrossThreadFreeReturnsToOwningShard) {
  ShardedHeap H(smallOptions(4));
  ASSERT_TRUE(H.isValid());

  constexpr int Count = 500;
  std::vector<void *> Owned;
  for (int I = 0; I < Count; ++I) {
    void *P = H.allocate(64);
    ASSERT_NE(P, nullptr);
    std::memset(P, 0x5A, 64);
    Owned.push_back(P);
  }
  size_t Owner = H.shardIndexOf(Owned.front());
  ASSERT_LT(Owner, H.numShards());

  // Free everything from a different thread (which has a different home
  // shard token); the frees must land on the owner, not the freeing
  // thread's shard.
  std::thread Freer([&] {
    for (void *P : Owned) {
      EXPECT_EQ(H.shardIndexOf(P), Owner);
      H.deallocate(P);
    }
  });
  Freer.join();

  // The cross-shard frees ride the lock-free sidecars; materialize them
  // before auditing the live gauges.
  H.drainRemoteFrees();
  DieHardStats S = H.stats();
  EXPECT_EQ(S.Allocations, static_cast<uint64_t>(Count));
  EXPECT_EQ(S.Frees, static_cast<uint64_t>(Count));
  EXPECT_EQ(S.IgnoredFrees, 0u);
  EXPECT_EQ(H.bytesLive(), 0u);
}

TEST(ShardedHeapTest, ConsecutiveThreadsCoverEveryShard) {
  ShardedHeap H(smallOptions(4));
  // Thread tokens are handed out round-robin, so a run of numShards()
  // threads created back to back must land on numShards() distinct shards.
  std::vector<size_t> Homes;
  for (size_t I = 0; I < H.numShards(); ++I) {
    std::thread T([&] {
      void *P = H.allocate(128);
      ASSERT_NE(P, nullptr);
      Homes.push_back(H.shardIndexOf(P));
      H.deallocate(P);
    });
    T.join(); // Sequential: no races on Homes, tokens stay consecutive.
  }
  std::vector<bool> Seen(H.numShards(), false);
  for (size_t Home : Homes) {
    ASSERT_LT(Home, H.numShards());
    Seen[Home] = true;
  }
  for (size_t I = 0; I < Seen.size(); ++I)
    EXPECT_TRUE(Seen[I]) << "no thread was assigned shard " << I;
}

TEST(ShardedHeapTest, ThreadChurnBeyondShardCount) {
  ShardedHeap H(smallOptions(2));
  ASSERT_TRUE(H.isValid());

  // Waves of short-lived threads, many more than there are shards: token
  // assignment must wrap and every thread's traffic must stay intact.
  constexpr int Waves = 4;
  constexpr int ThreadsPerWave = 12;
  std::atomic<int> Failures{0};
  for (int Wave = 0; Wave < Waves; ++Wave) {
    std::vector<std::thread> Threads;
    for (int T = 0; T < ThreadsPerWave; ++T)
      Threads.emplace_back([&H, &Failures, Wave, T] {
        struct Obj {
          unsigned char *Ptr;
          size_t Size;
          unsigned char Tag;
        };
        unsigned State = static_cast<unsigned>(Wave * 131 + T + 1);
        std::vector<Obj> Live;
        for (int Step = 0; Step < 400; ++Step) {
          State = State * 1664525u + 1013904223u;
          if (State % 2 == 0 || Live.empty()) {
            size_t Size = 1 + State % 1024;
            auto Tag = static_cast<unsigned char>(State >> 24);
            auto *P = static_cast<unsigned char *>(H.allocate(Size));
            if (P == nullptr) {
              ++Failures;
              return;
            }
            std::memset(P, Tag, Size);
            Live.push_back(Obj{P, Size, Tag});
          } else {
            Obj O = Live.back();
            Live.pop_back();
            for (size_t I = 0; I < O.Size; ++I)
              if (O.Ptr[I] != O.Tag) {
                ++Failures;
                return;
              }
            H.deallocate(O.Ptr);
          }
        }
        for (Obj &O : Live)
          H.deallocate(O.Ptr);
      });
    for (std::thread &T : Threads)
      T.join();
  }
  EXPECT_EQ(Failures.load(), 0);
  DieHardStats S = H.stats();
  EXPECT_EQ(S.Allocations, S.Frees);
  EXPECT_EQ(H.bytesLive(), 0u);
}

TEST(ShardedHeapTest, StatsAggregateAcrossShardsAndLargePath) {
  ShardedHeap H(smallOptions(4));
  ASSERT_TRUE(H.isValid());

  constexpr size_t PerThread = 50;
  std::vector<std::thread> Threads;
  std::mutex PtrLock;
  std::vector<void *> All;
  for (int T = 0; T < 4; ++T)
    Threads.emplace_back([&] {
      std::vector<void *> Mine;
      for (size_t I = 0; I < PerThread; ++I) {
        void *P = H.allocate(256);
        ASSERT_NE(P, nullptr);
        Mine.push_back(P);
      }
      std::lock_guard<std::mutex> G(PtrLock);
      All.insert(All.end(), Mine.begin(), Mine.end());
    });
  for (std::thread &T : Threads)
    T.join();

  void *Large = H.allocate(SizeClass::MaxObjectSize + 1);
  ASSERT_NE(Large, nullptr);

  DieHardStats S = H.stats();
  EXPECT_EQ(S.Allocations, 4 * PerThread);
  EXPECT_EQ(S.LargeAllocations, 1u);
  EXPECT_EQ(H.liveLargeObjects(), 1u);

  uint64_t PerShardSum = 0;
  for (size_t I = 0; I < H.numShards(); ++I)
    PerShardSum += H.shard(I).stats().Allocations;
  EXPECT_EQ(PerShardSum, S.Allocations)
      << "aggregate must equal the sum of the shards";

  for (void *P : All)
    H.deallocate(P);
  H.deallocate(Large);
  H.drainRemoteFrees(); // Materialize the sidecar-parked cross-shard frees.
  EXPECT_EQ(H.bytesLive(), 0u);
  EXPECT_EQ(H.stats().LargeFrees, 1u);
}

TEST(ShardedHeapTest, LargeObjectsBypassShards) {
  ShardedHeap H(smallOptions(4));
  constexpr size_t Size = 64 * 1024;
  auto *P = static_cast<char *>(H.allocate(Size));
  ASSERT_NE(P, nullptr);
  EXPECT_EQ(H.shardIndexOf(P), H.numShards()) << "large owner id expected";
  EXPECT_EQ(H.getObjectSize(P), Size);
  std::memset(P, 0x42, Size);
  H.deallocate(P);
  EXPECT_EQ(H.getObjectSize(P), 0u);
  H.deallocate(P); // Double free: validated and ignored.
  EXPECT_EQ(H.stats().IgnoredFrees, 1u);
}

TEST(ShardedHeapTest, ForeignPointersAreIgnored) {
  ShardedHeap H(smallOptions(2));
  int Local = 0;
  EXPECT_EQ(H.shardIndexOf(&Local), SIZE_MAX);
  EXPECT_EQ(H.getObjectSize(&Local), 0u);
  H.deallocate(&Local);
  EXPECT_EQ(H.stats().IgnoredFrees, 1u);
}

TEST(ShardedHeapTest, CrossThreadReallocPreservesData) {
  ShardedHeap H(smallOptions(4));
  auto *P = static_cast<unsigned char *>(H.allocate(100));
  ASSERT_NE(P, nullptr);
  for (int I = 0; I < 100; ++I)
    P[I] = static_cast<unsigned char>(I);
  size_t HomeOfMain = H.shardIndexOf(P);

  unsigned char *Q = nullptr;
  std::thread Grower([&] {
    // Growing past the rounded class size forces a move; the fresh block
    // comes from this thread's home shard.
    Q = static_cast<unsigned char *>(H.reallocate(P, 4096));
  });
  Grower.join();
  ASSERT_NE(Q, nullptr);
  for (int I = 0; I < 100; ++I)
    ASSERT_EQ(Q[I], static_cast<unsigned char>(I));
  EXPECT_LT(H.shardIndexOf(Q), H.numShards());
  (void)HomeOfMain; // The old slot is freed on its owner either way.
  H.deallocate(Q);
  H.drainRemoteFrees(); // Both frees crossed shards via the sidecars.
  EXPECT_EQ(H.bytesLive(), 0u);
}

TEST(ShardedHeapTest, ReallocSemanticsMatchDieHardHeap) {
  ShardedHeap H(smallOptions(2));
  // realloc(nullptr, n) allocates.
  void *P = H.reallocate(nullptr, 64);
  ASSERT_NE(P, nullptr);
  // Small shrink within the class stays in place.
  EXPECT_EQ(H.reallocate(P, 40), P);
  // realloc(p, 0) frees.
  EXPECT_EQ(H.reallocate(P, 0), nullptr);
  EXPECT_EQ(H.bytesLive(), 0u);
  // Foreign pointers are refused.
  int Local = 0;
  EXPECT_EQ(H.reallocate(&Local, 32), nullptr);
}

TEST(ShardedHeapTest, ZeroedAllocationIsZeroFilled) {
  ShardedHeap H(smallOptions(2));
  auto *P = static_cast<unsigned char *>(H.allocateZeroed(16, 32));
  ASSERT_NE(P, nullptr);
  for (int I = 0; I < 16 * 32; ++I)
    ASSERT_EQ(P[I], 0u);
  H.deallocate(P);
  EXPECT_EQ(H.allocateZeroed(SIZE_MAX / 2, 4), nullptr) << "overflow check";
}

TEST(ShardedHeapTest, TooSmallReservationTurnsInvalid) {
  ShardedHeapOptions O = smallOptions(8);
  O.Heap.HeapSize = 64 * 1024; // Far below 8 usable shards.
  ShardedHeap H(O);
  EXPECT_FALSE(H.isValid());
  EXPECT_EQ(H.allocate(64), nullptr);
}

TEST(ShardedHeapTest, SameShardDifferentClassesRunConcurrently) {
  // The point of per-partition locks: threads that share a home shard but
  // allocate different size classes must be able to proceed independently.
  // One shard forces every thread onto the same DieHardHeap; each thread
  // hammers its own size class. Correctness (and TSan cleanliness in the
  // sanitizer lanes) is the assertion — the throughput win is measured by
  // bench_mt_scaling's mixed-class scenario.
  ShardedHeap H(smallOptions(1));
  ASSERT_TRUE(H.isValid());

  constexpr int Threads = 6;
  constexpr int Rounds = 2000;
  std::atomic<int> Failures{0};
  std::vector<std::thread> Workers;
  for (int T = 0; T < Threads; ++T)
    Workers.emplace_back([&H, &Failures, T] {
      // Thread T owns size class T+2 (32 B .. 1 KB): distinct partitions,
      // distinct locks, zero cross-thread aliasing by construction.
      size_t Size = SizeClass::classToSize(T + 2);
      auto Tag = static_cast<unsigned char>(0xA0 + T);
      std::vector<unsigned char *> Live;
      for (int R = 0; R < Rounds; ++R) {
        auto *P = static_cast<unsigned char *>(H.allocate(Size));
        if (P == nullptr) {
          ++Failures;
          return;
        }
        std::memset(P, Tag, Size);
        Live.push_back(P);
        if (Live.size() > 64) {
          unsigned char *Old = Live.front();
          Live.erase(Live.begin());
          for (size_t I = 0; I < Size; ++I)
            if (Old[I] != Tag) {
              ++Failures;
              return;
            }
          H.deallocate(Old);
        }
      }
      for (unsigned char *P : Live)
        H.deallocate(P);
    });
  for (std::thread &W : Workers)
    W.join();

  EXPECT_EQ(Failures.load(), 0);
  DieHardStats S = H.stats();
  EXPECT_EQ(S.Allocations, static_cast<uint64_t>(Threads) * Rounds);
  EXPECT_EQ(S.Allocations, S.Frees);
  EXPECT_EQ(H.bytesLive(), 0u);
  // Exactly the six driven partitions saw traffic.
  for (int T = 0; T < Threads; ++T)
    EXPECT_EQ(H.shard(0).partition(T + 2).stats().Allocations,
              static_cast<uint64_t>(Rounds));
}

/// Tiny two-shard heap where one class's threshold is reachable in a few
/// allocations (partition = 64 KB, so the 4 KB class has 16 slots and a 1/M
/// threshold of 8).
ShardedHeapOptions tinyTwoShardOptions(bool Overflow) {
  ShardedHeapOptions O;
  O.Heap.HeapSize = 12 * SizeClass::MaxObjectSize * 4;
  O.Heap.Seed = 42;
  O.NumShards = 2;
  O.OverflowRouting = Overflow;
  return O;
}

TEST(ShardedHeapTest, OverflowRoutesToLeastLoadedSibling) {
  ShardedHeap H(tinyTwoShardOptions(/*Overflow=*/true));
  ASSERT_TRUE(H.isValid());
  int C = SizeClass::sizeToClass(4096);
  size_t Home = H.homeShardIndex();
  size_t Sibling = 1 - Home;
  size_t Threshold = H.shard(Home).thresholdForClass(C);
  ASSERT_GT(Threshold, 0u);

  // Saturate the home partition exactly to its 1/M bound.
  std::vector<void *> Held;
  for (size_t I = 0; I < Threshold; ++I) {
    void *P = H.allocate(4096);
    ASSERT_NE(P, nullptr);
    EXPECT_EQ(H.shardIndexOf(P), Home) << "below threshold stays home";
    Held.push_back(P);
  }
  EXPECT_EQ(H.partitionFill(Home, C), 1.0);
  EXPECT_EQ(H.overflowAllocations(), 0u);

  // The next allocation would previously have returned nullptr; with
  // routing it lands on the sibling's same-class partition.
  void *Borrowed = H.allocate(4096);
  ASSERT_NE(Borrowed, nullptr) << "overflow must borrow sibling capacity";
  EXPECT_EQ(H.shardIndexOf(Borrowed), Sibling);
  EXPECT_EQ(H.overflowAllocations(), 1u);
  EXPECT_EQ(H.stats().OverflowAllocations, 1u);
  EXPECT_EQ(H.shard(Sibling).liveInClass(C), 1u);
  EXPECT_EQ(H.stats().FailedAllocations, 0u)
      << "a detour that succeeds is not a failed allocation";

  // The borrowed object frees back to its owner like any cross-shard free
  // (a sidecar push; drain to materialize it before reading the gauge).
  H.deallocate(Borrowed);
  // Even without the cache tier, the cross-shard free must have gone
  // through the owner's sidecar — never the remote partition mutex.
  EXPECT_EQ(H.remoteFrees(), 1u);
  H.drainRemoteFrees();
  EXPECT_EQ(H.shard(Sibling).liveInClass(C), 0u);
  for (void *P : Held)
    H.deallocate(P);
  EXPECT_EQ(H.bytesLive(), 0u);
}

TEST(ShardedHeapTest, OverflowDisabledRestoresStrictPerShardBound) {
  ShardedHeap H(tinyTwoShardOptions(/*Overflow=*/false));
  ASSERT_TRUE(H.isValid());
  int C = SizeClass::sizeToClass(4096);
  size_t Home = H.homeShardIndex();
  size_t Threshold = H.shard(Home).thresholdForClass(C);

  std::vector<void *> Held;
  for (size_t I = 0; I < Threshold; ++I) {
    void *P = H.allocate(4096);
    ASSERT_NE(P, nullptr);
    Held.push_back(P);
  }
  // Strict 1/M semantics: saturation fails even though the sibling has
  // room, exactly as a lone DieHardHeap would.
  EXPECT_EQ(H.allocate(4096), nullptr);
  EXPECT_EQ(H.overflowAllocations(), 0u);
  EXPECT_GE(H.stats().FailedAllocations, 1u);
  for (void *P : Held)
    H.deallocate(P);
}

TEST(ShardedHeapTest, OverflowStopsWhenEverySiblingIsSaturated) {
  ShardedHeap H(tinyTwoShardOptions(/*Overflow=*/true));
  ASSERT_TRUE(H.isValid());
  int C = SizeClass::sizeToClass(4096);
  size_t Threshold = H.shard(0).thresholdForClass(C);

  // Both shards share one threshold, so 2*threshold allocations saturate
  // the class everywhere (the second half arriving via overflow routing)…
  std::vector<void *> Held;
  for (size_t I = 0; I < 2 * Threshold; ++I) {
    void *P = H.allocate(4096);
    ASSERT_NE(P, nullptr) << "allocation " << I;
    Held.push_back(P);
  }
  EXPECT_EQ(H.overflowAllocations(), static_cast<uint64_t>(Threshold));
  EXPECT_EQ(H.partitionFill(0, C), 1.0);
  EXPECT_EQ(H.partitionFill(1, C), 1.0);
  // …and the 1/M invariant then holds globally: no partition may exceed
  // its bound, so the next request fails — counted exactly once, as one
  // failed malloc, not once per probed partition.
  EXPECT_EQ(H.allocate(4096), nullptr);
  EXPECT_EQ(H.stats().FailedAllocations, 1u);
  // Other classes are untouched by the saturation.
  void *Other = H.allocate(64);
  EXPECT_NE(Other, nullptr);
  H.deallocate(Other);
  for (void *P : Held)
    H.deallocate(P);
  H.drainRemoteFrees(); // Half of Held lived on the sibling shard.
  EXPECT_EQ(H.bytesLive(), 0u);
}

TEST(ShardedHeapTest, CoarseLockModeKeepsSemantics) {
  // PartitionLocking=false degrades to one lock per shard (the measurement
  // baseline for bench_mt_scaling). Behaviour must be unchanged — only the
  // contention profile differs.
  ShardedHeapOptions O = smallOptions(2);
  O.PartitionLocking = false;
  ShardedHeap H(O);
  ASSERT_TRUE(H.isValid());

  std::atomic<int> Failures{0};
  std::vector<std::thread> Workers;
  for (int T = 0; T < 4; ++T)
    Workers.emplace_back([&H, &Failures, T] {
      std::vector<void *> Live;
      for (int R = 0; R < 1000; ++R) {
        void *P = H.allocate(8u << (R % 6));
        if (P == nullptr) {
          ++Failures;
          return;
        }
        Live.push_back(P);
      }
      (void)T;
      for (void *P : Live)
        H.deallocate(P);
    });
  for (std::thread &W : Workers)
    W.join();
  EXPECT_EQ(Failures.load(), 0);
  DieHardStats S = H.stats();
  EXPECT_EQ(S.Allocations, S.Frees);
  EXPECT_EQ(H.bytesLive(), 0u);
}

TEST(ShardedHeapTest, AdapterDrivesWorkloadsThroughTheShards) {
  // The ShardedHeapAdapter facade lets the workload/bench harnesses drive
  // the full sharded front end; the checksum must match the system
  // allocator's run of the same script (allocator-independent semantics).
  ShardedHeap H(smallOptions(4));
  ShardedHeapAdapter Adapter(H);
  EXPECT_STREQ(Adapter.getName(), "diehard-sharded");

  WorkloadParams P;
  P.Name = "sharded";
  P.MemoryOps = 20000;
  P.MinSize = 8;
  P.MaxSize = 2048;
  P.MaxLive = 500;
  P.Seed = 9;
  SyntheticWorkload W(P);
  uint64_t Sharded = W.run(Adapter).Checksum;
  SystemAllocator System;
  EXPECT_EQ(Sharded, W.run(System).Checksum);
  EXPECT_EQ(H.bytesLive(), 0u);
}

TEST(ShardedHeapTest, ConcurrentMixedStress) {
  // The all-in-one race hunt for the sanitizer lanes: small and large
  // traffic, cross-thread frees through a shared exchange, reallocs and
  // queries, all concurrent.
  ShardedHeap H(smallOptions(4, 7));
  ASSERT_TRUE(H.isValid());

  std::mutex ExchangeLock;
  std::vector<std::pair<unsigned char *, size_t>> Exchange;
  std::atomic<int> Failures{0};

  auto Worker = [&](unsigned Id) {
    unsigned State = Id * 2654435761u + 1;
    auto Next = [&State] {
      State = State * 1664525u + 1013904223u;
      return State;
    };
    std::vector<std::pair<unsigned char *, size_t>> Live;
    for (int Step = 0; Step < 3000; ++Step) {
      unsigned Op = Next() % 100;
      if (Op < 40 || Live.empty()) {
        size_t Size = (Op % 10 == 0) ? 17 * 1024 + Next() % 4096
                                     : 1 + Next() % 2048;
        auto *P = static_cast<unsigned char *>(H.allocate(Size));
        if (P == nullptr) {
          ++Failures;
          return;
        }
        std::memset(P, static_cast<int>(Id), Size);
        Live.emplace_back(P, Size);
      } else if (Op < 55) {
        auto [P, Size] = Live.back();
        Live.pop_back();
        std::lock_guard<std::mutex> G(ExchangeLock);
        Exchange.emplace_back(P, Size);
      } else if (Op < 70) {
        std::unique_lock<std::mutex> G(ExchangeLock);
        if (!Exchange.empty()) {
          auto [P, Size] = Exchange.back();
          Exchange.pop_back();
          G.unlock();
          // Freed cross-thread: the registry must route to the owner.
          if (H.getObjectSize(P) == 0)
            ++Failures;
          H.deallocate(P);
        }
      } else if (Op < 80 && !Live.empty()) {
        auto &[P, Size] = Live.back();
        size_t NewSize = 1 + Next() % 4096;
        auto *Q = static_cast<unsigned char *>(H.reallocate(P, NewSize));
        if (Q == nullptr) {
          ++Failures;
          return;
        }
        P = Q;
        Size = NewSize;
        std::memset(P, static_cast<int>(Id), Size);
      } else if (!Live.empty()) {
        auto [P, Size] = Live.back();
        Live.pop_back();
        for (size_t I = 0; I < Size; ++I)
          if (P[I] != static_cast<unsigned char>(Id)) {
            ++Failures;
            break;
          }
        H.deallocate(P);
      }
    }
    for (auto &[P, Size] : Live)
      H.deallocate(P);
  };

  std::vector<std::thread> Threads;
  for (unsigned T = 0; T < 8; ++T)
    Threads.emplace_back(Worker, T + 1);
  for (std::thread &T : Threads)
    T.join();
  for (auto &[P, Size] : Exchange)
    H.deallocate(P);

  EXPECT_EQ(Failures.load(), 0);
  H.drainRemoteFrees(); // Exchange frees crossed shards via the sidecars.
  DieHardStats S = H.stats();
  EXPECT_EQ(S.Allocations, S.Frees);
  EXPECT_EQ(S.LargeAllocations, S.LargeFrees);
  EXPECT_EQ(H.bytesLive(), 0u);
  EXPECT_EQ(H.liveLargeObjects(), 0u);
}

} // namespace
} // namespace diehard
