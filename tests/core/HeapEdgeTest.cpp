//===- tests/core/HeapEdgeTest.cpp ----------------------------------------===//
//
// Part of the DieHard reproduction (Berger & Zorn, PLDI 2006).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Boundary and failure-path tests for the DieHard heap: degenerate
/// configurations, class boundaries, the probe-fallback path, accounting
/// around large objects, and the whole-heap fill mode.
///
//===----------------------------------------------------------------------===//

#include "core/DieHardHeap.h"

#include <gtest/gtest.h>

#include <cstring>
#include <set>
#include <vector>

namespace diehard {
namespace {

TEST(HeapEdgeTest, ZeroSizedHeapIsInvalidButSafe) {
  DieHardOptions O;
  O.HeapSize = 0;
  O.Seed = 1;
  DieHardHeap H(O);
  EXPECT_FALSE(H.isValid());
  EXPECT_EQ(H.allocate(16), nullptr);
  H.deallocate(nullptr); // Must not crash.
  int X;
  H.deallocate(&X);
  EXPECT_EQ(H.getObjectSize(&X), 0u);
}

TEST(HeapEdgeTest, HeapSmallerThanOnePartitionIsInvalid) {
  DieHardOptions O;
  O.HeapSize = SizeClass::MaxObjectSize * 6; // < 12 classes' worth.
  O.Seed = 1;
  DieHardHeap H(O);
  EXPECT_FALSE(H.isValid());
}

TEST(HeapEdgeTest, ExactClassBoundarySizes) {
  DieHardOptions O;
  O.HeapSize = 48 * 1024 * 1024;
  O.Seed = 2;
  DieHardHeap H(O);
  // MaxObjectSize goes to the small heap; MaxObjectSize+1 goes large.
  void *Small = H.allocate(SizeClass::MaxObjectSize);
  void *Large = H.allocate(SizeClass::MaxObjectSize + 1);
  ASSERT_NE(Small, nullptr);
  ASSERT_NE(Large, nullptr);
  EXPECT_TRUE(H.isInHeap(Small));
  EXPECT_FALSE(H.isInHeap(Large));
  H.deallocate(Small);
  H.deallocate(Large);
}

TEST(HeapEdgeTest, ProbeFallbackEngagesNearCapacity) {
  // With M barely above 1 the class runs at ~95% occupancy, where 64
  // random probes fail with probability ~0.95^64 ≈ 3.7% and the linear
  // fallback must engage — and still succeed.
  DieHardOptions O;
  O.HeapSize = 12 * SizeClass::MaxObjectSize * 8;
  O.M = 1.05;
  O.Seed = 3;
  DieHardHeap H(O);
  int C = SizeClass::sizeToClass(8);
  size_t Threshold = H.thresholdForClass(C);
  std::vector<void *> Held;
  for (size_t I = 0; I < Threshold; ++I) {
    void *P = H.allocate(8);
    ASSERT_NE(P, nullptr) << "allocation " << I << "/" << Threshold;
    Held.push_back(P);
  }
  EXPECT_GT(H.stats().ProbeFallbacks, 0u)
      << "high occupancy must exercise the fallback scan";
  // All pointers distinct even through the fallback path.
  std::set<void *> Unique(Held.begin(), Held.end());
  EXPECT_EQ(Unique.size(), Held.size());
  for (void *P : Held)
    H.deallocate(P);
}

TEST(HeapEdgeTest, ReallocToSameClassKeepsPointer) {
  DieHardOptions O;
  O.HeapSize = 48 * 1024 * 1024;
  O.Seed = 4;
  DieHardHeap H(O);
  void *P = H.allocate(100); // Class size 128.
  ASSERT_NE(P, nullptr);
  EXPECT_EQ(H.reallocate(P, 128), P);
  EXPECT_EQ(H.reallocate(P, 65), P);
  H.deallocate(P);
}

TEST(HeapEdgeTest, ReallocForeignPointerRefused) {
  DieHardOptions O;
  O.HeapSize = 48 * 1024 * 1024;
  O.Seed = 5;
  DieHardHeap H(O);
  int Stack;
  EXPECT_EQ(H.reallocate(&Stack, 64), nullptr)
      << "realloc of a foreign pointer must refuse, not corrupt";
}

TEST(HeapEdgeTest, BytesLiveAccountsLargeObjects) {
  DieHardOptions O;
  O.HeapSize = 48 * 1024 * 1024;
  O.Seed = 6;
  DieHardHeap H(O);
  EXPECT_EQ(H.bytesLive(), 0u);
  void *Small = H.allocate(100); // Rounds to 128.
  void *Large = H.allocate(50000);
  EXPECT_EQ(H.bytesLive(), 128u + 50000u);
  H.deallocate(Small);
  EXPECT_EQ(H.bytesLive(), 50000u);
  H.deallocate(Large);
  EXPECT_EQ(H.bytesLive(), 0u);
}

TEST(HeapEdgeTest, FreedSlotEventuallyReused) {
  // Randomization delays reuse but must not leak the slot forever: with
  // the class at threshold, the freed slot is the only place left.
  DieHardOptions O;
  O.HeapSize = 12 * SizeClass::MaxObjectSize * 4;
  O.Seed = 7;
  DieHardHeap H(O);
  int C = SizeClass::sizeToClass(2048);
  size_t Threshold = H.thresholdForClass(C);
  std::vector<void *> Held;
  for (size_t I = 0; I < Threshold; ++I)
    Held.push_back(H.allocate(2048));
  void *Freed = Held.back();
  Held.pop_back();
  H.deallocate(Freed);
  // Random placement means the freed slot is not reused immediately, but
  // repeated allocation cycles must rediscover it (no permanent leak).
  bool Reused = false;
  for (int Round = 0; Round < 10000 && !Reused; ++Round) {
    void *P = H.allocate(2048);
    ASSERT_NE(P, nullptr);
    Reused = P == Freed;
    H.deallocate(P);
  }
  EXPECT_TRUE(Reused) << "a freed slot must re-enter circulation";
  for (void *P : Held)
    H.deallocate(P);
}

TEST(HeapEdgeTest, ForEachLiveObjectSeesExactlyTheLiveSet) {
  DieHardOptions O;
  O.HeapSize = 48 * 1024 * 1024;
  O.Seed = 8;
  DieHardHeap H(O);
  std::set<const void *> Expected;
  for (int I = 0; I < 64; ++I)
    Expected.insert(H.allocate(16 + (I % 5) * 200));
  void *Dead = H.allocate(64);
  H.deallocate(Dead);

  std::set<const void *> Seen;
  size_t TotalBytes = 0;
  H.forEachLiveObject([&](int, size_t, const void *Ptr, size_t Size) {
    Seen.insert(Ptr);
    TotalBytes += Size;
  });
  EXPECT_EQ(Seen, Expected);
  EXPECT_EQ(TotalBytes, H.bytesLive());
  for (const void *P : Expected)
    H.deallocate(const_cast<void *>(P));
}

TEST(HeapEdgeTest, WholeHeapFillLeavesNoZeroRuns) {
  DieHardOptions O;
  O.HeapSize = 12 * SizeClass::MaxObjectSize * 2;
  O.Seed = 9;
  O.RandomFillHeapOnInit = true;
  DieHardHeap H(O);
  ASSERT_TRUE(H.isValid());
  // Sample freshly allocated objects across classes: none may be the
  // demand-zero pages an unfilled heap would show.
  for (size_t Size : {8u, 64u, 1024u, 16384u}) {
    auto *P = static_cast<uint32_t *>(H.allocate(Size));
    ASSERT_NE(P, nullptr);
    int NonZero = 0;
    for (size_t I = 0; I < Size / 4; ++I)
      NonZero += P[I] != 0 ? 1 : 0;
    EXPECT_GT(NonZero, static_cast<int>(Size / 8)) << Size;
    H.deallocate(P);
  }
}

TEST(HeapEdgeTest, StatsAreInternallyConsistent) {
  DieHardOptions O;
  // Large enough that no size class hits its 1/M threshold (the mix below
  // puts ~200 objects in the 16 KB class alone).
  O.HeapSize = 256 * 1024 * 1024;
  O.Seed = 10;
  DieHardHeap H(O);
  std::vector<void *> Held;
  for (int I = 0; I < 500; ++I)
    Held.push_back(H.allocate(1 + (I * 37) % 20000));
  for (void *P : Held)
    H.deallocate(P);
  const DieHardStats &S = H.stats();
  EXPECT_EQ(S.Allocations + S.LargeAllocations, 500u);
  EXPECT_EQ(S.Frees, S.Allocations);
  EXPECT_EQ(S.LargeFrees, S.LargeAllocations);
  EXPECT_GE(S.Probes, S.Allocations) << "every allocation probes at least "
                                        "once";
}

} // namespace
} // namespace diehard
