//===- tests/core/LargeObjectTest.cpp -------------------------------------===//
//
// Part of the DieHard reproduction (Berger & Zorn, PLDI 2006).
//
//===----------------------------------------------------------------------===//

#include "core/LargeObjectManager.h"

#include "core/DieHardHeap.h"
#include "support/MmapRegion.h"

#include <gtest/gtest.h>

#include <cstring>

namespace diehard {
namespace {

TEST(LargeObjectManagerTest, AllocatesUsableMemory) {
  LargeObjectManager M;
  constexpr size_t Size = 100 * 1024;
  auto *P = static_cast<char *>(M.allocate(Size));
  ASSERT_NE(P, nullptr);
  std::memset(P, 0xEE, Size);
  EXPECT_EQ(static_cast<unsigned char>(P[Size - 1]), 0xEE);
  EXPECT_TRUE(M.deallocate(P));
}

TEST(LargeObjectManagerTest, TracksSizeAndLiveness) {
  LargeObjectManager M;
  void *P = M.allocate(64 * 1024);
  ASSERT_NE(P, nullptr);
  EXPECT_EQ(M.getSize(P), 64u * 1024);
  EXPECT_TRUE(M.contains(P));
  EXPECT_EQ(M.liveCount(), 1u);
  EXPECT_TRUE(M.deallocate(P));
  EXPECT_FALSE(M.contains(P));
  EXPECT_EQ(M.liveCount(), 0u);
}

TEST(LargeObjectManagerTest, DoubleFreeIgnored) {
  LargeObjectManager M;
  void *P = M.allocate(32 * 1024);
  ASSERT_NE(P, nullptr);
  EXPECT_TRUE(M.deallocate(P));
  EXPECT_FALSE(M.deallocate(P)) << "second free must be refused";
}

TEST(LargeObjectManagerTest, UnknownPointerIgnored) {
  LargeObjectManager M;
  int Local;
  EXPECT_FALSE(M.deallocate(&Local));
  EXPECT_FALSE(M.deallocate(nullptr));
}

TEST(LargeObjectManagerTest, ZeroSizeRefused) {
  LargeObjectManager M;
  EXPECT_EQ(M.allocate(0), nullptr);
}

TEST(LargeObjectManagerDeathTest, FrontGuardPageFaults) {
  LargeObjectManager M;
  auto *P = static_cast<char *>(M.allocate(8 * 1024 * 1024));
  ASSERT_NE(P, nullptr);
  // One byte before the object is the PROT_NONE guard page (Section 4.1).
  EXPECT_DEATH({ P[-1] = 1; }, "");
  M.deallocate(P);
}

TEST(LargeObjectManagerDeathTest, RearGuardPageFaults) {
  LargeObjectManager M;
  size_t Page = MmapRegion::pageSize();
  // Exactly page-sized body: the byte after the object is the rear guard.
  auto *P = static_cast<char *>(M.allocate(Page));
  ASSERT_NE(P, nullptr);
  EXPECT_DEATH({ P[Page] = 1; }, "");
  M.deallocate(P);
}

TEST(DieHardHeapLargeTest, HeapRoutesLargeRequests) {
  DieHardOptions O;
  O.HeapSize = 24 * 1024 * 1024;
  O.Seed = 4;
  DieHardHeap H(O);
  constexpr size_t Size = SizeClass::MaxObjectSize + 1;
  auto *P = static_cast<char *>(H.allocate(Size));
  ASSERT_NE(P, nullptr);
  EXPECT_FALSE(H.isInHeap(P)) << "large objects live outside the heap area";
  EXPECT_EQ(H.getObjectSize(P), Size);
  std::memset(P, 1, Size);
  EXPECT_EQ(H.stats().LargeAllocations, 1u);
  H.deallocate(P);
  EXPECT_EQ(H.stats().LargeFrees, 1u);
  EXPECT_EQ(H.getObjectSize(P), 0u);
}

TEST(DieHardHeapLargeTest, LargeDoubleFreeIgnored) {
  DieHardOptions O;
  O.HeapSize = 24 * 1024 * 1024;
  O.Seed = 4;
  DieHardHeap H(O);
  void *P = H.allocate(128 * 1024);
  ASSERT_NE(P, nullptr);
  H.deallocate(P);
  H.deallocate(P);
  EXPECT_EQ(H.stats().IgnoredFrees, 1u);
}

TEST(DieHardHeapLargeTest, ReallocAcrossLargeBoundary) {
  DieHardOptions O;
  O.HeapSize = 24 * 1024 * 1024;
  O.Seed = 4;
  DieHardHeap H(O);
  auto *P = static_cast<char *>(H.allocate(8192));
  ASSERT_NE(P, nullptr);
  for (int I = 0; I < 8192; ++I)
    P[I] = static_cast<char>(I * 31);
  // Grow past MaxObjectSize: must migrate to the large-object manager.
  auto *Q = static_cast<char *>(H.reallocate(P, 64 * 1024));
  ASSERT_NE(Q, nullptr);
  EXPECT_FALSE(H.isInHeap(Q));
  for (int I = 0; I < 8192; ++I)
    ASSERT_EQ(Q[I], static_cast<char>(I * 31));
  // And shrink back into the small heap.
  auto *R = static_cast<char *>(H.reallocate(Q, 1024));
  ASSERT_NE(R, nullptr);
  EXPECT_TRUE(H.isInHeap(R));
  for (int I = 0; I < 1024; ++I)
    ASSERT_EQ(R[I], static_cast<char>(I * 31));
  H.deallocate(R);
}

} // namespace
} // namespace diehard
