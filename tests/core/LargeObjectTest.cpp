//===- tests/core/LargeObjectTest.cpp -------------------------------------===//
//
// Part of the DieHard reproduction (Berger & Zorn, PLDI 2006).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Tests for the large-object path: guard pages, the validity table,
/// realloc across the small/large boundary, and concurrent alloc/free
/// (externally locked manager and the sharded heap's shared path).
///
//===----------------------------------------------------------------------===//

#include "core/LargeObjectManager.h"

#include "core/DieHardHeap.h"
#include "core/ShardedHeap.h"
#include "support/MmapRegion.h"

#include <gtest/gtest.h>

#include <atomic>
#include <cstring>
#include <mutex>
#include <thread>
#include <vector>

namespace diehard {
namespace {

TEST(LargeObjectManagerTest, AllocatesUsableMemory) {
  LargeObjectManager M;
  constexpr size_t Size = 100 * 1024;
  auto *P = static_cast<char *>(M.allocate(Size));
  ASSERT_NE(P, nullptr);
  std::memset(P, 0xEE, Size);
  EXPECT_EQ(static_cast<unsigned char>(P[Size - 1]), 0xEE);
  EXPECT_TRUE(M.deallocate(P));
}

TEST(LargeObjectManagerTest, TracksSizeAndLiveness) {
  LargeObjectManager M;
  void *P = M.allocate(64 * 1024);
  ASSERT_NE(P, nullptr);
  EXPECT_EQ(M.getSize(P), 64u * 1024);
  EXPECT_TRUE(M.contains(P));
  EXPECT_EQ(M.liveCount(), 1u);
  EXPECT_TRUE(M.deallocate(P));
  EXPECT_FALSE(M.contains(P));
  EXPECT_EQ(M.liveCount(), 0u);
}

TEST(LargeObjectManagerTest, DoubleFreeIgnored) {
  LargeObjectManager M;
  void *P = M.allocate(32 * 1024);
  ASSERT_NE(P, nullptr);
  EXPECT_TRUE(M.deallocate(P));
  EXPECT_FALSE(M.deallocate(P)) << "second free must be refused";
}

TEST(LargeObjectManagerTest, UnknownPointerIgnored) {
  LargeObjectManager M;
  int Local;
  EXPECT_FALSE(M.deallocate(&Local));
  EXPECT_FALSE(M.deallocate(nullptr));
}

TEST(LargeObjectManagerTest, ZeroSizeRefused) {
  LargeObjectManager M;
  EXPECT_EQ(M.allocate(0), nullptr);
}

TEST(LargeObjectManagerDeathTest, FrontGuardPageFaults) {
  LargeObjectManager M;
  auto *P = static_cast<char *>(M.allocate(8 * 1024 * 1024));
  ASSERT_NE(P, nullptr);
  // One byte before the object is the PROT_NONE guard page (Section 4.1).
  EXPECT_DEATH({ P[-1] = 1; }, "");
  M.deallocate(P);
}

TEST(LargeObjectManagerDeathTest, RearGuardPageFaults) {
  LargeObjectManager M;
  size_t Page = MmapRegion::pageSize();
  // Exactly page-sized body: the byte after the object is the rear guard.
  auto *P = static_cast<char *>(M.allocate(Page));
  ASSERT_NE(P, nullptr);
  EXPECT_DEATH({ P[Page] = 1; }, "");
  M.deallocate(P);
}

TEST(DieHardHeapLargeTest, HeapRoutesLargeRequests) {
  DieHardOptions O;
  O.HeapSize = 24 * 1024 * 1024;
  O.Seed = 4;
  DieHardHeap H(O);
  constexpr size_t Size = SizeClass::MaxObjectSize + 1;
  auto *P = static_cast<char *>(H.allocate(Size));
  ASSERT_NE(P, nullptr);
  EXPECT_FALSE(H.isInHeap(P)) << "large objects live outside the heap area";
  EXPECT_EQ(H.getObjectSize(P), Size);
  std::memset(P, 1, Size);
  EXPECT_EQ(H.stats().LargeAllocations, 1u);
  H.deallocate(P);
  EXPECT_EQ(H.stats().LargeFrees, 1u);
  EXPECT_EQ(H.getObjectSize(P), 0u);
}

TEST(DieHardHeapLargeTest, LargeDoubleFreeIgnored) {
  DieHardOptions O;
  O.HeapSize = 24 * 1024 * 1024;
  O.Seed = 4;
  DieHardHeap H(O);
  void *P = H.allocate(128 * 1024);
  ASSERT_NE(P, nullptr);
  H.deallocate(P);
  H.deallocate(P);
  EXPECT_EQ(H.stats().IgnoredFrees, 1u);
}

TEST(LargeObjectConcurrencyTest, ManagerIsSafeUnderAnExternalLock) {
  // LargeObjectManager itself is not thread-safe; its contract is that the
  // caller serializes access (ShardedHeap uses a dedicated large-object
  // lock). This hammers that usage pattern directly.
  LargeObjectManager M;
  std::mutex Lock;
  std::atomic<int> Failures{0};
  constexpr int ThreadCount = 4;
  constexpr int OpsPerThread = 200;

  std::vector<std::thread> Threads;
  for (int T = 0; T < ThreadCount; ++T)
    Threads.emplace_back([&M, &Lock, &Failures, T] {
      unsigned State = static_cast<unsigned>(T) * 2654435761u + 1;
      std::vector<std::pair<char *, size_t>> Mine;
      for (int I = 0; I < OpsPerThread; ++I) {
        State = State * 1664525u + 1013904223u;
        if (State % 3 != 0 || Mine.empty()) {
          size_t Size = 17 * 1024 + State % (64 * 1024);
          char *P;
          {
            std::lock_guard<std::mutex> G(Lock);
            P = static_cast<char *>(M.allocate(Size));
          }
          if (P == nullptr) {
            ++Failures;
            return;
          }
          // Writes land outside the lock: the mappings are disjoint.
          P[0] = static_cast<char>(T);
          P[Size - 1] = static_cast<char>(T);
          Mine.emplace_back(P, Size);
        } else {
          auto [P, Size] = Mine.back();
          Mine.pop_back();
          if (P[0] != static_cast<char>(T) ||
              P[Size - 1] != static_cast<char>(T)) {
            ++Failures;
            return;
          }
          std::lock_guard<std::mutex> G(Lock);
          if (!M.deallocate(P)) {
            ++Failures;
            return;
          }
        }
      }
      std::lock_guard<std::mutex> G(Lock);
      for (auto &[P, Size] : Mine)
        M.deallocate(P);
    });
  for (std::thread &T : Threads)
    T.join();

  EXPECT_EQ(Failures.load(), 0);
  EXPECT_EQ(M.liveCount(), 0u);
}

TEST(LargeObjectConcurrencyTest, ShardedHeapLargePathUnderContention) {
  // The same workload through ShardedHeap's shared large-object path,
  // including cross-thread frees handed over through a shared pool.
  ShardedHeapOptions O;
  O.Heap.HeapSize = 64 * 1024 * 1024;
  O.Heap.Seed = 11;
  O.NumShards = 4;
  ShardedHeap H(O);
  ASSERT_TRUE(H.isValid());

  std::mutex PoolLock;
  std::vector<std::pair<char *, size_t>> Pool;
  std::atomic<int> Failures{0};

  std::vector<std::thread> Threads;
  for (int T = 0; T < 4; ++T)
    Threads.emplace_back([&, T] {
      unsigned State = static_cast<unsigned>(T) * 48271u + 13;
      for (int I = 0; I < 150; ++I) {
        State = State * 1664525u + 1013904223u;
        size_t Size = SizeClass::MaxObjectSize + 1 + State % (32 * 1024);
        auto *P = static_cast<char *>(H.allocate(Size));
        if (P == nullptr || H.getObjectSize(P) != Size) {
          ++Failures;
          return;
        }
        P[0] = static_cast<char>(T);
        P[Size - 1] = static_cast<char>(T);
        std::unique_lock<std::mutex> G(PoolLock);
        Pool.emplace_back(P, Size);
        if (Pool.size() > 8) {
          auto [Q, QSize] = Pool.front();
          Pool.erase(Pool.begin());
          G.unlock();
          // Someone else's object, freed here: routed by address range.
          if (H.getObjectSize(Q) != QSize)
            ++Failures;
          H.deallocate(Q);
        }
      }
    });
  for (std::thread &T : Threads)
    T.join();
  for (auto &[P, Size] : Pool)
    H.deallocate(P);

  EXPECT_EQ(Failures.load(), 0);
  DieHardStats S = H.stats();
  EXPECT_EQ(S.LargeAllocations, 4u * 150u);
  EXPECT_EQ(S.LargeFrees, S.LargeAllocations);
  EXPECT_EQ(H.liveLargeObjects(), 0u);
  EXPECT_EQ(H.bytesLive(), 0u);
}

TEST(DieHardHeapLargeTest, ReallocAcrossLargeBoundary) {
  DieHardOptions O;
  O.HeapSize = 24 * 1024 * 1024;
  O.Seed = 4;
  DieHardHeap H(O);
  auto *P = static_cast<char *>(H.allocate(8192));
  ASSERT_NE(P, nullptr);
  for (int I = 0; I < 8192; ++I)
    P[I] = static_cast<char>(I * 31);
  // Grow past MaxObjectSize: must migrate to the large-object manager.
  auto *Q = static_cast<char *>(H.reallocate(P, 64 * 1024));
  ASSERT_NE(Q, nullptr);
  EXPECT_FALSE(H.isInHeap(Q));
  for (int I = 0; I < 8192; ++I)
    ASSERT_EQ(Q[I], static_cast<char>(I * 31));
  // And shrink back into the small heap.
  auto *R = static_cast<char *>(H.reallocate(Q, 1024));
  ASSERT_NE(R, nullptr);
  EXPECT_TRUE(H.isInHeap(R));
  for (int I = 0; I < 1024; ++I)
    ASSERT_EQ(R[I], static_cast<char>(I * 31));
  H.deallocate(R);
}

} // namespace
} // namespace diehard
