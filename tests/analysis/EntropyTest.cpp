//===- tests/analysis/EntropyTest.cpp -------------------------------------===//
//
// Part of the DieHard reproduction (Berger & Zorn, PLDI 2006).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Tests for the layout-entropy and adjacency estimators.
///
//===----------------------------------------------------------------------===//

#include "analysis/Entropy.h"

#include "baselines/LeaAllocator.h"
#include "core/DieHardHeap.h"
#include "support/Rng.h"

#include <gtest/gtest.h>

#include <cmath>
#include <memory>

namespace diehard {
namespace {

TEST(EntropyTest, ConstantPlacementHasZeroEntropy) {
  EntropyEstimate E =
      estimatePlacementEntropy([](uint64_t) { return uint64_t(42); }, 500);
  EXPECT_EQ(E.DistinctValues, 1u);
  EXPECT_DOUBLE_EQ(E.ShannonBits, 0.0);
  EXPECT_DOUBLE_EQ(E.MinEntropyBits, 0.0);
}

TEST(EntropyTest, UniformPlacementApproachesLogOfSupport) {
  // A uniform 256-value placement has 8 bits of entropy; the plug-in
  // estimate from 16k samples should be close.
  Rng Rand(7);
  EntropyEstimate E = estimatePlacementEntropy(
      [&](uint64_t) { return static_cast<uint64_t>(Rand.nextBounded(256)); },
      16000);
  EXPECT_EQ(E.DistinctValues, 256u);
  EXPECT_NEAR(E.ShannonBits, 8.0, 0.1);
  EXPECT_GT(E.MinEntropyBits, 6.5);
}

TEST(EntropyTest, DieHardPlacementIsHighEntropy) {
  // The slot of the first 64-byte allocation across seeds: uniform over
  // the class's slots, so entropy ~ log2(slots) (capped by sample count).
  DieHardOptions O;
  O.HeapSize = 12 * SizeClass::MaxObjectSize * 8;
  EntropyEstimate E = estimatePlacementEntropy(
      [&](uint64_t Seed) {
        DieHardOptions Local = O;
        Local.Seed = Seed | 1;
        DieHardHeap H(Local);
        char *Base = static_cast<char *>(H.getObjectStart(H.allocate(64)));
        char *Second = static_cast<char *>(H.allocate(64));
        return static_cast<uint64_t>(Second - Base);
      },
      2000);
  // 2000 samples over ~2k slots (plus sign wrap doubling the support):
  // birthday collisions leave ~1300-1500 distinct values.
  EXPECT_GT(E.ShannonBits, 9.0);
  EXPECT_GT(E.DistinctValues, 1200u);
}

TEST(EntropyTest, LeaPlacementIsFullyPredictable) {
  EntropyEstimate E = estimatePlacementEntropy(
      [](uint64_t) {
        LeaAllocator A(16 << 20);
        auto *First = static_cast<char *>(A.allocate(64));
        auto *Second = static_cast<char *>(A.allocate(64));
        return static_cast<uint64_t>(Second - First);
      },
      200);
  EXPECT_EQ(E.DistinctValues, 1u)
      << "a deterministic allocator has zero placement entropy";
  EXPECT_DOUBLE_EQ(E.ShannonBits, 0.0);
}

TEST(EntropyTest, AdjacencyRateSeparatesTheAllocators) {
  // Lea: consecutive same-size allocations are adjacent essentially
  // always. DieHard: essentially never.
  double LeaRate = measureAdjacencyRate(
      [](uint64_t) {
        LeaAllocator A(16 << 20);
        auto First = reinterpret_cast<uintptr_t>(A.allocate(64));
        auto Second = reinterpret_cast<uintptr_t>(A.allocate(64));
        return std::make_pair(First, Second);
      },
      /*ObjectSize=*/80, // 64 bytes + the 16-byte aligned header step.
      100);
  EXPECT_GT(LeaRate, 0.99);

  DieHardOptions O;
  O.HeapSize = 12 * SizeClass::MaxObjectSize * 8;
  double DieHardRate = measureAdjacencyRate(
      [&](uint64_t Seed) {
        DieHardOptions Local = O;
        Local.Seed = Seed | 1;
        DieHardHeap H(Local);
        auto First = reinterpret_cast<uintptr_t>(H.allocate(64));
        auto Second = reinterpret_cast<uintptr_t>(H.allocate(64));
        return std::make_pair(First, Second);
      },
      /*ObjectSize=*/64, 400);
  EXPECT_LT(DieHardRate, 0.02);
}

} // namespace
} // namespace diehard
