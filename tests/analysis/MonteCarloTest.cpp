//===- tests/analysis/MonteCarloTest.cpp ----------------------------------===//
//
// Part of the DieHard reproduction (Berger & Zorn, PLDI 2006).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Cross-checks: the Monte-Carlo simulators must agree with the closed-form
/// theorems, and the *real allocator* must agree with both. Together these
/// verify that DieHardHeap actually delivers the probabilistic memory
/// safety the analysis promises.
///
//===----------------------------------------------------------------------===//

#include "analysis/MonteCarlo.h"

#include "analysis/Probability.h"
#include "core/DieHardHeap.h"

#include <gtest/gtest.h>

#include <cstring>
#include <tuple>
#include <vector>

namespace diehard {
namespace {

struct OverflowCase {
  double FreeFraction;
  int OverflowObjects;
  int Replicas;
};

class OverflowAgreement : public ::testing::TestWithParam<OverflowCase> {};

TEST_P(OverflowAgreement, SimulationMatchesTheorem1) {
  OverflowCase C = GetParam();
  Rng Rand(1234);
  size_t HeapSlots = 4096;
  auto LiveSlots =
      static_cast<size_t>((1.0 - C.FreeFraction) * HeapSlots + 0.5);
  double Sim = simulateOverflowMask(HeapSlots, LiveSlots, C.OverflowObjects,
                                    C.Replicas, 40000, Rand);
  double Closed = maskOverflowProbability(C.FreeFraction, C.OverflowObjects,
                                          C.Replicas);
  EXPECT_NEAR(Sim, Closed, 0.012)
      << "F/H=" << C.FreeFraction << " O=" << C.OverflowObjects
      << " k=" << C.Replicas;
}

INSTANTIATE_TEST_SUITE_P(
    Fig4aGrid, OverflowAgreement,
    ::testing::Values(OverflowCase{0.875, 1, 1}, OverflowCase{0.875, 1, 3},
                      OverflowCase{0.875, 1, 5}, OverflowCase{0.75, 1, 1},
                      OverflowCase{0.75, 1, 4}, OverflowCase{0.5, 1, 1},
                      OverflowCase{0.5, 1, 3}, OverflowCase{0.5, 1, 6},
                      OverflowCase{0.875, 3, 1}, OverflowCase{0.5, 2, 3}));

struct DanglingCase {
  size_t FreeSlots;
  size_t Allocations;
  int Replicas;
};

class DanglingAgreement : public ::testing::TestWithParam<DanglingCase> {};

TEST_P(DanglingAgreement, SimulationMatchesTheorem2) {
  DanglingCase C = GetParam();
  Rng Rand(77);
  double Sim =
      simulateDanglingMask(C.FreeSlots, C.Allocations, C.Replicas, 8000,
                           Rand);
  // Theorem 2 is stated over F/S slots; FreeSlots here *is* F/S.
  double Closed =
      maskDanglingProbability(C.FreeSlots * 8, 8, C.Allocations, C.Replicas);
  EXPECT_NEAR(Sim, Closed, 0.02)
      << "Q=" << C.FreeSlots << " A=" << C.Allocations
      << " k=" << C.Replicas;
}

INSTANTIATE_TEST_SUITE_P(
    Fig4bGrid, DanglingAgreement,
    ::testing::Values(DanglingCase{2048, 100, 1}, DanglingCase{2048, 1000, 1},
                      DanglingCase{2048, 1500, 1}, DanglingCase{2048, 500, 3},
                      DanglingCase{512, 100, 1}, DanglingCase{512, 400, 3},
                      DanglingCase{8192, 4000, 1}));

class UninitAgreement
    : public ::testing::TestWithParam<std::tuple<int, int>> {};

TEST_P(UninitAgreement, SimulationMatchesTheorem3) {
  auto [Bits, Replicas] = GetParam();
  Rng Rand(5150);
  double Sim = simulateUninitDetect(Bits, Replicas, 60000, Rand);
  double Closed = detectUninitReadProbability(Bits, Replicas);
  EXPECT_NEAR(Sim, Closed, 0.01) << "B=" << Bits << " k=" << Replicas;
}

INSTANTIATE_TEST_SUITE_P(Theorem3Grid, UninitAgreement,
                         ::testing::Combine(::testing::Values(2, 4, 8, 16),
                                            ::testing::Values(3, 4, 5)));

// End-to-end: the real allocator realizes Theorem 2. Allocate an object,
// free it prematurely, perform A intervening allocations, and check whether
// the contents survived; the survival rate must track the closed form.
TEST(HeapRealizesTheorems, DanglingSurvivalMatchesTheorem2) {
  constexpr size_t ObjectSize = 64;
  constexpr int Trials = 300;
  constexpr size_t Intervening = 400;

  int Survived = 0;
  DieHardOptions O;
  O.HeapSize = 12 * SizeClass::MaxObjectSize * 8; // Small heap: few slots.
  O.M = 2.0;
  for (int T = 0; T < Trials; ++T) {
    O.Seed = static_cast<uint64_t>(T) * 2654435761u + 1;
    DieHardHeap H(O);
    ASSERT_TRUE(H.isValid());
    auto *Victim = static_cast<unsigned char *>(H.allocate(ObjectSize));
    ASSERT_NE(Victim, nullptr);
    std::memset(Victim, 0xAB, ObjectSize);
    H.deallocate(Victim); // Premature free.
    std::vector<void *> Later;
    for (size_t A = 0; A < Intervening; ++A) {
      void *P = H.allocate(ObjectSize);
      if (P == nullptr)
        break;
      std::memset(P, 0xCD, ObjectSize);
      Later.push_back(P);
    }
    bool Intact = true;
    for (size_t B = 0; B < ObjectSize; ++B)
      Intact &= Victim[B] == 0xAB;
    Survived += Intact ? 1 : 0;
    for (void *P : Later)
      H.deallocate(P);
  }

  int C = SizeClass::sizeToClass(ObjectSize);
  DieHardHeap Probe(O);
  size_t Slots = Probe.slotsInClass(C);
  double Closed = maskDanglingProbability(Slots * ObjectSize, ObjectSize,
                                          Intervening, 1);
  double Observed = static_cast<double>(Survived) / Trials;
  EXPECT_NEAR(Observed, Closed, 0.08)
      << "slots=" << Slots << " closed=" << Closed;
}

// End-to-end: overflows of O objects' worth beyond a victim object hit live
// neighbours at the rate Theorem 1 predicts (approximately — the theorem
// models uniform writes, the heap provides uniform placement).
TEST(HeapRealizesTheorems, OverflowHitRateTracksFullness) {
  constexpr size_t ObjectSize = 128;
  constexpr int Trials = 400;

  auto hitRate = [&](double TargetFill) {
    int Hits = 0;
    DieHardOptions O;
    O.HeapSize = 12 * SizeClass::MaxObjectSize * 8;
    for (int T = 0; T < Trials; ++T) {
      O.Seed = static_cast<uint64_t>(T) * 40503u + 7;
      DieHardHeap H(O);
      int C = SizeClass::sizeToClass(ObjectSize);
      size_t Slots = H.slotsInClass(C);
      auto Target = static_cast<size_t>(TargetFill * Slots);
      std::vector<unsigned char *> Live;
      for (size_t I = 0; I < Target; ++I) {
        auto *P = static_cast<unsigned char *>(H.allocate(ObjectSize));
        if (P == nullptr)
          break;
        std::memset(P, 0x11, ObjectSize);
        Live.push_back(P);
      }
      if (Live.empty())
        return -1.0; // Allocation failure; surfaces as a bad rate below.
      // Overflow one object's worth past a random victim.
      unsigned char *Victim = Live[Live.size() / 2];
      std::memset(Victim + ObjectSize, 0x99, ObjectSize);
      bool Hit = false;
      for (unsigned char *P : Live) {
        if (P == Victim)
          continue;
        for (size_t B = 0; B < ObjectSize && !Hit; ++B)
          Hit = P[B] != 0x11;
      }
      Hits += Hit ? 1 : 0;
    }
    return static_cast<double>(Hits) / Trials;
  };

  double Sparse = hitRate(0.125);
  double Dense = hitRate(0.5);
  // The paper's qualitative claim: fuller heaps mask less. The overflow
  // lands on the slot after the victim, which is live with probability
  // about the fill fraction.
  EXPECT_LT(Sparse, Dense);
  EXPECT_NEAR(Sparse, 0.125, 0.07);
  EXPECT_NEAR(Dense, 0.5, 0.10);
}

// End-to-end: the real allocator realizes Theorem 3. Spawn k differently
// seeded random-fill heaps (exactly what k replicas hold), read B bits of
// an uninitialized allocation from each, and measure how often all k
// disagree pairwise — the voter's detection condition.
TEST(HeapRealizesTheorems, UninitReadDetectionMatchesTheorem3) {
  constexpr int Replicas = 3;
  constexpr int Trials = 1500;

  for (int Bits : {4, 8}) {
    int Detected = 0;
    for (int T = 0; T < Trials; ++T) {
      uint32_t Values[Replicas];
      for (int K = 0; K < Replicas; ++K) {
        DieHardOptions O;
        O.HeapSize = 12 * SizeClass::MaxObjectSize * 2;
        O.Seed = static_cast<uint64_t>(T) * 977 + K * 131071 + 1;
        O.RandomFillObjects = true;
        DieHardHeap H(O);
        auto *P = static_cast<uint32_t *>(H.allocate(64));
        ASSERT_NE(P, nullptr);
        Values[K] = P[7] & ((uint32_t(1) << Bits) - 1); // Uninit read.
      }
      bool AllDistinct = Values[0] != Values[1] && Values[0] != Values[2] &&
                         Values[1] != Values[2];
      Detected += AllDistinct ? 1 : 0;
    }
    double Rate = static_cast<double>(Detected) / Trials;
    double Closed = detectUninitReadProbability(Bits, Replicas);
    EXPECT_NEAR(Rate, Closed, 0.04) << "B = " << Bits;
  }
}

} // namespace
} // namespace diehard
