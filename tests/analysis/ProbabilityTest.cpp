//===- tests/analysis/ProbabilityTest.cpp ---------------------------------===//
//
// Part of the DieHard reproduction (Berger & Zorn, PLDI 2006).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Tests for the Section 6 closed-form probabilities.
///
//===----------------------------------------------------------------------===//

#include "analysis/Probability.h"

#include <gtest/gtest.h>

#include <cmath>

namespace diehard {
namespace {

// The paper's own worked numbers are the ground truth here.

TEST(Theorem1Test, PaperExampleOneEighthFull) {
  // "When the heap is no more than 1/8 full, DieHard in stand-alone mode
  // provides an 87.5% chance of masking a single-object overflow."
  EXPECT_NEAR(maskOverflowProbability(7.0 / 8.0, 1, 1), 0.875, 1e-9);
}

TEST(Theorem1Test, PaperExampleThreeReplicas) {
  // "...while three replicas avoids such errors with greater than 99%
  // probability."
  EXPECT_GT(maskOverflowProbability(7.0 / 8.0, 1, 3), 0.99);
}

TEST(Theorem1Test, HalfFullSingleReplica) {
  EXPECT_NEAR(maskOverflowProbability(0.5, 1, 1), 0.5, 1e-9);
  EXPECT_NEAR(maskOverflowProbability(0.5, 2, 1), 0.25, 1e-9);
}

TEST(Theorem1Test, MoreReplicasNeverHurt) {
  for (double F : {0.5, 0.75, 0.875}) {
    double Prev = maskOverflowProbability(F, 2, 1);
    for (int K : {3, 4, 5, 6}) {
      double P = maskOverflowProbability(F, 2, K);
      EXPECT_GE(P, Prev) << "F=" << F << " k=" << K;
      Prev = P;
    }
  }
}

TEST(Theorem1Test, BiggerOverflowsAreWorse) {
  for (int O = 1; O < 10; ++O)
    EXPECT_GT(maskOverflowProbability(0.875, O, 1),
              maskOverflowProbability(0.875, O + 1, 1));
}

TEST(Theorem1Test, DegenerateCases) {
  EXPECT_NEAR(maskOverflowProbability(1.0, 5, 1), 1.0, 1e-12)
      << "an empty heap masks everything";
  EXPECT_NEAR(maskOverflowProbability(0.875, 0, 1), 1.0, 1e-12)
      << "a zero-length overflow is always masked";
  EXPECT_NEAR(maskOverflowProbability(0.0, 1, 3), 0.0, 1e-12)
      << "a full heap masks nothing";
}

TEST(Theorem2Test, PaperExampleSmallObject) {
  // "The stand-alone version of DieHard has greater than a 99.5% chance of
  // masking an 8-byte object that was freed 10,000 allocations too soon"
  // (default configuration: 384MB heap, M=2 -> F = 16MB per class region
  // with half free; the paper's default yields F/S >> 10000).
  // Default config: per-class partition 32MB, half available -> F = 16MB.
  size_t FreeBytes = 16 * 1024 * 1024;
  EXPECT_GT(maskDanglingProbability(FreeBytes, 8, 10000, 1), 0.995);
}

TEST(Theorem2Test, SmallerObjectsAreSafer) {
  size_t FreeBytes = 1 << 20;
  for (size_t S = 8; S <= 128; S *= 2)
    EXPECT_GT(maskDanglingProbability(FreeBytes, S, 1000, 1),
              maskDanglingProbability(FreeBytes, 2 * S, 1000, 1));
}

TEST(Theorem2Test, MoreInterveningAllocationsAreWorse) {
  size_t FreeBytes = 1 << 20;
  EXPECT_GT(maskDanglingProbability(FreeBytes, 64, 100, 1),
            maskDanglingProbability(FreeBytes, 64, 1000, 1));
  EXPECT_GT(maskDanglingProbability(FreeBytes, 64, 1000, 1),
            maskDanglingProbability(FreeBytes, 64, 10000, 1));
}

TEST(Theorem2Test, ReplicasImproveMasking) {
  size_t FreeBytes = 1 << 18;
  double K1 = maskDanglingProbability(FreeBytes, 256, 500, 1);
  double K3 = maskDanglingProbability(FreeBytes, 256, 500, 3);
  EXPECT_GT(K3, K1);
}

TEST(Theorem2Test, BeyondValidityRangeIsZero) {
  EXPECT_EQ(maskDanglingProbability(1024, 8, 1 << 20, 1), 0.0);
}

TEST(Theorem3Test, PaperExampleFourBits) {
  // "The probability of detecting an uninitialized read of four bits across
  // three replicas is 82%, while for four replicas, it drops to 66.7%."
  EXPECT_NEAR(detectUninitReadProbability(4, 3), 0.8203, 5e-4);
  EXPECT_NEAR(detectUninitReadProbability(4, 4), 0.6665, 5e-3);
}

TEST(Theorem3Test, PaperExampleSixteenBits) {
  // "The odds of detecting an uninitialized read of 16 bits drops from
  // 99.995% for three replicas to 99.99% for four replicas."
  EXPECT_NEAR(detectUninitReadProbability(16, 3), 0.99995, 5e-5);
  EXPECT_NEAR(detectUninitReadProbability(16, 4), 0.9999, 5e-5);
}

TEST(Theorem3Test, ExtraReplicasLowerDetectionSlightly) {
  // The paper's counterintuitive observation: replicas lower the likelihood
  // of detecting a *fixed-width* uninitialized read.
  for (int B : {2, 4, 8}) {
    double Prev = detectUninitReadProbability(B, 3);
    // Stop before the pigeonhole boundary (k > 2^B pins P to zero).
    for (int K = 4; K <= 6 && K <= (1 << B); ++K) {
      double P = detectUninitReadProbability(B, K);
      EXPECT_LT(P, Prev) << "B=" << B << " k=" << K;
      Prev = P;
    }
  }
}

TEST(Theorem3Test, WiderReadsAreCaughtMoreOften) {
  for (int B = 1; B < 20; ++B)
    EXPECT_LT(detectUninitReadProbability(B, 3),
              detectUninitReadProbability(B + 1, 3));
}

TEST(Theorem3Test, PigeonholeGivesZero) {
  // 1-bit reads across 3 replicas: only two values exist, two replicas must
  // agree, detection is impossible.
  EXPECT_EQ(detectUninitReadProbability(1, 3), 0.0);
}

TEST(ExpectedProbesTest, PaperExampleMTwo) {
  // "For M = 2, the expected number of probes is two."
  EXPECT_NEAR(expectedProbes(2.0), 2.0, 1e-12);
}

TEST(ExpectedProbesTest, LargerHeapsProbeLess) {
  EXPECT_GT(expectedProbes(1.5), expectedProbes(2.0));
  EXPECT_GT(expectedProbes(2.0), expectedProbes(4.0));
  EXPECT_NEAR(expectedProbes(1e9), 1.0, 1e-6);
}

} // namespace
} // namespace diehard
