//===- tests/workloads/GauntletDriverTest.cpp -----------------------------===//
//
// Part of the DieHard reproduction (Berger & Zorn, PLDI 2006).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Tests for the gauntlet workload driver: deterministic replay from a
/// fixed seed, closed-form op accounting across threads, and a smoke run
/// of every workload shape against the DieHard sharded heap.
///
//===----------------------------------------------------------------------===//

#include "workloads/WorkloadDriver.h"

#include "baselines/DieHardAllocator.h"
#include "baselines/LeaAllocator.h"
#include "core/HeapAdapter.h"
#include "core/ShardedHeap.h"

#include <gtest/gtest.h>

namespace diehard {
namespace {

constexpr GauntletKind AllKinds[] = {GauntletKind::Larson,
                                     GauntletKind::Pipeline,
                                     GauntletKind::Burst,
                                     GauntletKind::Fragment};

GauntletParams tinyParams(GauntletKind Kind, uint64_t Seed = 0x6A07) {
  GauntletParams P;
  P.Kind = Kind;
  P.Threads = 4;
  P.OpsPerThread = 4000;
  P.MinSize = 8;
  P.MaxSize = 256;
  P.SlotsPerThread = 128;
  P.BurstObjects = 64;
  P.Rounds = 4;
  P.Seed = Seed;
  return P;
}

ShardedHeapOptions shardedOptions(uint64_t Seed = 42) {
  ShardedHeapOptions O;
  O.Heap.HeapSize = 96 * 1024 * 1024;
  O.Heap.Seed = Seed;
  O.NumShards = 2;
  return O;
}

TEST(GauntletDriverTest, KindNamesRoundTrip) {
  for (GauntletKind Kind : AllKinds) {
    GauntletKind Parsed;
    ASSERT_TRUE(gauntletKindFromName(gauntletKindName(Kind), Parsed))
        << gauntletKindName(Kind);
    EXPECT_EQ(Parsed, Kind);
  }
  GauntletKind Ignored;
  EXPECT_FALSE(gauntletKindFromName("no-such-workload", Ignored));
}

TEST(GauntletDriverTest, PipelineRoundsThreadsToPairs) {
  GauntletParams P = tinyParams(GauntletKind::Pipeline);
  P.Threads = 5;
  EXPECT_EQ(gauntletThreadsUsed(P), 4) << "5 threads -> 2 pairs";
  P.Threads = 1;
  EXPECT_EQ(gauntletThreadsUsed(P), 2) << "at least one pair";
  P.Kind = GauntletKind::Larson;
  P.Threads = 5;
  EXPECT_EQ(gauntletThreadsUsed(P), 5);
}

TEST(GauntletDriverTest, DeterministicReplayFromFixedSeed) {
  // Two runs with the same seed — against heaps with *different* seeds, so
  // layouts differ — must report identical checksums and counters: every
  // op decision comes from the workload's own RNG streams and the checksum
  // folds commutatively across threads.
  for (GauntletKind Kind : AllKinds) {
    SCOPED_TRACE(gauntletKindName(Kind));
    GauntletParams P = tinyParams(Kind);
    ShardedHeap HeapA(shardedOptions(1)), HeapB(shardedOptions(2));
    ShardedHeapAdapter A(HeapA), B(HeapB);
    GauntletResult RA = runGauntlet(P, A);
    GauntletResult RB = runGauntlet(P, B);
    EXPECT_EQ(RA.Checksum, RB.Checksum)
        << "checksum must not depend on heap layout or schedule";
    EXPECT_EQ(RA.Allocations, RB.Allocations);
    EXPECT_EQ(RA.Frees, RB.Frees);
    EXPECT_EQ(RA.FailedAllocations, 0u);
    EXPECT_EQ(RB.FailedAllocations, 0u);
  }
}

TEST(GauntletDriverTest, DifferentSeedsDifferentChecksums) {
  ShardedHeap Heap(shardedOptions());
  ShardedHeapAdapter A(Heap);
  GauntletResult R1 = runGauntlet(tinyParams(GauntletKind::Larson, 1), A);
  GauntletResult R2 = runGauntlet(tinyParams(GauntletKind::Larson, 2), A);
  EXPECT_NE(R1.Checksum, R2.Checksum);
}

TEST(GauntletDriverTest, ChecksumIdenticalAcrossAllocators) {
  // The driver's self-validation property: any allocator that preserves
  // user data yields the same checksum, because the workload only hashes
  // bytes it stamped.
  for (GauntletKind Kind : AllKinds) {
    SCOPED_TRACE(gauntletKindName(Kind));
    GauntletParams P = tinyParams(Kind);

    SystemAllocator System;
    uint64_t Reference = runGauntlet(P, System).Checksum;

    ShardedHeap Heap(shardedOptions());
    ShardedHeapAdapter Sharded(Heap);
    EXPECT_EQ(runGauntlet(P, Sharded).Checksum, Reference) << "sharded";

    LeaAllocator LeaInner(128 << 20);
    LockedAllocator Lea(LeaInner);
    EXPECT_EQ(runGauntlet(P, Lea).Checksum, Reference) << "lea-locked";
  }
}

TEST(GauntletDriverTest, ExactOpAccountingAcrossThreads) {
  // Every workload performs a closed-form number of allocations: the
  // driver promises expectedAllocations() exactly, regardless of thread
  // interleaving, and frees each one before returning.
  for (GauntletKind Kind : AllKinds) {
    for (int Threads : {1, 2, 4}) {
      SCOPED_TRACE(::testing::Message()
                   << gauntletKindName(Kind) << " @" << Threads << "t");
      GauntletParams P = tinyParams(Kind);
      P.Threads = Threads;
      SystemAllocator System;
      GauntletResult R = runGauntlet(P, System);
      EXPECT_EQ(R.Allocations, expectedAllocations(P));
      EXPECT_EQ(R.Allocations, R.Frees) << "quiescence drains everything";
      EXPECT_EQ(R.FailedAllocations, 0u);
    }
  }
}

TEST(GauntletDriverTest, SmokeEveryWorkloadOnDieHardHeap) {
  // The gauntlet's integration smoke: each workload shape runs against
  // the full sharded DieHard front end (the shim's engine) and leaves the
  // heap empty — Allocations == Frees and zero bytes live once the
  // caches are flushed.
  for (GauntletKind Kind : AllKinds) {
    SCOPED_TRACE(gauntletKindName(Kind));
    ShardedHeap Heap(shardedOptions());
    ShardedHeapAdapter A(Heap);
    GauntletParams P = tinyParams(Kind);
    GauntletResult R = runGauntlet(P, A);
    EXPECT_EQ(R.Allocations, expectedAllocations(P));
    EXPECT_EQ(R.Allocations, R.Frees);
    EXPECT_EQ(R.FailedAllocations, 0u);
    EXPECT_GT(R.OpsPerSec, 0.0);
    EXPECT_GT(R.Latency.samples(), 0u) << "latency sampling ran";
    // Workers flushed their caches at thread exit, but cross-shard frees
    // park in remote-free sidecars until someone drains them; force that
    // here so the liveness audit is exact.
    Heap.drainRemoteFrees();
    EXPECT_EQ(Heap.bytesLive(), 0u) << "quiescent heap holds nothing";
  }
}

TEST(GauntletDriverTest, LockedAllocatorSerializesAndRenames) {
  DieHardOptions O;
  O.HeapSize = 96 * 1024 * 1024;
  O.Seed = 7;
  DieHardAllocator Inner(O);
  LockedAllocator Locked(Inner);
  EXPECT_STREQ(Locked.getName(), "diehard-locked");

  // DieHardAllocator alone is not thread-safe; through the lock the
  // 4-thread larson churn must complete with exact accounting.
  GauntletParams P = tinyParams(GauntletKind::Larson);
  GauntletResult R = runGauntlet(P, Locked);
  EXPECT_EQ(R.Allocations, expectedAllocations(P));
  EXPECT_EQ(R.Allocations, R.Frees);
}

TEST(LatencyHistogramTest, ExactBelowFirstOctave) {
  LatencyHistogram H;
  for (uint64_t V = 0; V < 8; ++V)
    H.record(V);
  EXPECT_EQ(H.samples(), 8u);
  EXPECT_EQ(H.valueAtQuantile(0.0), 0u);
  EXPECT_EQ(H.valueAtQuantile(1.0), 7u);
}

TEST(LatencyHistogramTest, BoundedRelativeError) {
  // The reported quantile is the bucket's inclusive upper bound: never
  // below the true value, and at most one sub-bucket (12.5%) above it.
  for (uint64_t Value : {100u, 1000u, 4096u, 65537u, 1000000u}) {
    LatencyHistogram H;
    H.record(Value);
    uint64_t Reported = H.p99();
    EXPECT_GE(Reported, Value);
    EXPECT_LE(Reported, Value + Value / 8 + 1) << Value;
  }
}

TEST(LatencyHistogramTest, QuantilesOrdered) {
  LatencyHistogram H;
  for (uint64_t I = 1; I <= 1000; ++I)
    H.record(I * 100);
  EXPECT_LE(H.p50(), H.p99());
  EXPECT_GE(H.p50(), 50u * 100u);
  EXPECT_LE(H.p99(), 1000u * 100u + 1000u * 100u / 8 + 1);
}

TEST(LatencyHistogramTest, MergeMatchesCombinedRecording) {
  LatencyHistogram Separate[2], Combined;
  for (uint64_t I = 0; I < 500; ++I) {
    uint64_t Low = I * 3 + 1, High = I * 997 + 5;
    Separate[0].record(Low);
    Separate[1].record(High);
    Combined.record(Low);
    Combined.record(High);
  }
  LatencyHistogram Merged;
  Merged.merge(Separate[0]);
  Merged.merge(Separate[1]);
  EXPECT_EQ(Merged.samples(), Combined.samples());
  for (double Q : {0.0, 0.25, 0.5, 0.9, 0.99, 1.0})
    EXPECT_EQ(Merged.valueAtQuantile(Q), Combined.valueAtQuantile(Q)) << Q;
}

TEST(LatencyHistogramTest, EmptyHistogramReportsZero) {
  LatencyHistogram H;
  EXPECT_EQ(H.samples(), 0u);
  EXPECT_EQ(H.p50(), 0u);
  EXPECT_EQ(H.p99(), 0u);
}

} // namespace
} // namespace diehard
