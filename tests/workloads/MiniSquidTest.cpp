//===- tests/workloads/MiniSquidTest.cpp ----------------------------------===//
//
// Part of the DieHard reproduction (Berger & Zorn, PLDI 2006).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The Squid case study (Section 7.3): the same buggy server crashes with a
/// freelist allocator, survives with DieHard, and is fully protected by the
/// checked libc functions.
///
//===----------------------------------------------------------------------===//

#include "workloads/MiniSquid.h"

#include "baselines/DieHardAllocator.h"
#include "baselines/LeaAllocator.h"
#include "workloads/ForkHarness.h"

#include <gtest/gtest.h>

#include <string>

namespace diehard {
namespace {

/// Drives a request mix ending in the ill-formed (overflowing) request,
/// followed by enough churn to surface corruption. Returns 0 if every
/// response was sane.
int serveWithOverflow(Allocator &Heap, const CheckedLibc *Checked) {
  MiniSquid Server(Heap, Checked);
  // Warm the cache so live entries surround the buggy buffer.
  for (int I = 0; I < 60; ++I) {
    std::string R = Server.handleRequest(
        "GET http://example.com/page" + std::to_string(I));
    if (R.rfind("200 ", 0) != 0)
      return 1;
  }
  // The ill-formed input: a URL far longer than the 64-byte buffer.
  std::string Attack = "GET http://evil.example/";
  Attack.append(300, 'A');
  Server.handleRequest(Attack);
  // Post-attack churn: under a corrupted freelist heap this crashes.
  for (int I = 0; I < 200; ++I) {
    std::string R = Server.handleRequest(
        "GET http://example.com/after" + std::to_string(I));
    if (R.rfind("200 ", 0) != 0)
      return 2;
  }
  return 0;
}

TEST(MiniSquidTest, WellFormedRequestsWorkEverywhere) {
  DieHardOptions O;
  O.HeapSize = 32 * 1024 * 1024;
  O.Seed = 3;
  DieHardAllocator A(O);
  MiniSquid Server(A);
  std::string Miss = Server.handleRequest("GET http://a.example/x");
  EXPECT_EQ(Miss, "200 MISS doc(http://a.example/x)\n");
  std::string Hit = Server.handleRequest("GET http://a.example/x");
  EXPECT_EQ(Hit, "200 HIT doc(http://a.example/x)\n");
  EXPECT_EQ(Server.handleRequest("PUT x"), "400 Bad Request\n");
  EXPECT_EQ(Server.cacheSize(), 1u);
}

TEST(MiniSquidTest, CanonicalizationLowercasesHost) {
  DieHardOptions O;
  O.HeapSize = 32 * 1024 * 1024;
  O.Seed = 3;
  DieHardAllocator A(O);
  MiniSquid Server(A);
  std::string R = Server.handleRequest("GET HTTP://A.EXAMPLE/PATH");
  EXPECT_EQ(R, "200 MISS doc(http://a.example/PATH)\n");
}

TEST(MiniSquidTest, EvictionBoundsCache) {
  DieHardOptions O;
  O.HeapSize = 32 * 1024 * 1024;
  O.Seed = 3;
  DieHardAllocator A(O);
  MiniSquid Server(A);
  for (int I = 0; I < 200; ++I)
    Server.handleRequest("GET http://e.example/p" + std::to_string(I));
  EXPECT_LE(Server.cacheSize(), 64u);
}

TEST(MiniSquidCaseStudy, CrashesWithFreelistAllocator) {
  // "Squid crashes with a segmentation fault" under the GNU libc allocator.
  ForkOutcome Outcome = runInFork([] {
    LeaAllocator Lea(64 << 20);
    return serveWithOverflow(Lea, nullptr);
  });
  EXPECT_FALSE(Outcome.cleanExit())
      << "the overflow must corrupt the freelist heap";
}

TEST(MiniSquidCaseStudy, SurvivesWithDieHard) {
  // "Using DieHard in stand-alone mode, the overflow has no effect."
  // DieHard's 64-byte-class neighbourhood is sparse: run several seeds and
  // require survival in the vast majority (Theorem 1 says overflow masking
  // is probabilistic, near-certain at low heap fullness).
  int Survived = 0;
  constexpr int Runs = 10;
  for (int Run = 0; Run < Runs; ++Run) {
    ForkOutcome Outcome = runInFork([Run] {
      DieHardOptions O;
      O.HeapSize = 64 * 1024 * 1024;
      O.Seed = static_cast<uint64_t>(Run) + 1;
      DieHardAllocator A(O);
      return serveWithOverflow(A, nullptr);
    });
    Survived += Outcome.cleanExit() ? 1 : 0;
  }
  EXPECT_GE(Survived, 9) << "DieHard must mask the Squid overflow";
}

TEST(MiniSquidCaseStudy, CheckedLibcPreventsOverflowEntirely) {
  // With the Section 4.4 replacements the copy is clamped: determinism, not
  // probability.
  ForkOutcome Outcome = runInFork([] {
    DieHardOptions O;
    O.HeapSize = 64 * 1024 * 1024;
    O.Seed = 42;
    DieHardAllocator A(O);
    CheckedLibc Checked(A.heap());
    return serveWithOverflow(A, &Checked);
  });
  EXPECT_TRUE(Outcome.cleanExit());
}

TEST(MiniSquidCaseStudy, ServerStateIntactAfterMaskedOverflow) {
  DieHardOptions O;
  O.HeapSize = 64 * 1024 * 1024;
  O.Seed = 1234;
  DieHardAllocator A(O);
  MiniSquid Server(A);
  Server.handleRequest("GET http://keep.example/alive");
  std::string Attack = "GET http://evil.example/";
  Attack.append(300, 'B');
  Server.handleRequest(Attack);
  // The pre-attack cache entry still answers correctly.
  std::string R = Server.handleRequest("GET http://keep.example/alive");
  EXPECT_EQ(R, "200 HIT doc(http://keep.example/alive)\n");
}

} // namespace
} // namespace diehard
