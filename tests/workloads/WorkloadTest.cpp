//===- tests/workloads/WorkloadTest.cpp -----------------------------------===//
//
// Part of the DieHard reproduction (Berger & Zorn, PLDI 2006).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Tests for the synthetic workloads and suite presets.
///
//===----------------------------------------------------------------------===//

#include "workloads/SyntheticWorkload.h"

#include "baselines/DieHardAllocator.h"
#include "baselines/GcAllocator.h"
#include "baselines/LeaAllocator.h"
#include "workloads/WorkloadSuite.h"

#include <gtest/gtest.h>

namespace diehard {
namespace {

WorkloadParams tinyWorkload(uint64_t Seed = 1) {
  WorkloadParams P;
  P.Name = "tiny";
  P.MemoryOps = 30000;
  P.MinSize = 8;
  P.MaxSize = 512;
  P.MaxLive = 800;
  P.Seed = Seed;
  return P;
}

DieHardOptions heapOptions(uint64_t Seed = 77) {
  DieHardOptions O;
  O.HeapSize = 96 * 1024 * 1024;
  O.Seed = Seed;
  return O;
}

TEST(SyntheticWorkloadTest, DeterministicAcrossRuns) {
  SyntheticWorkload W(tinyWorkload());
  DieHardAllocator A(heapOptions(1)), B(heapOptions(2));
  WorkloadResult RA = W.run(A);
  WorkloadResult RB = W.run(B);
  EXPECT_EQ(RA.Checksum, RB.Checksum)
      << "checksum must not depend on heap layout";
  EXPECT_EQ(RA.Allocations, RB.Allocations);
  EXPECT_EQ(RA.Frees, RB.Frees);
}

TEST(SyntheticWorkloadTest, ChecksumIdenticalAcrossAllocators) {
  // The central integration property: any correct allocator produces the
  // same checksum, because the workload only reads data it wrote.
  SyntheticWorkload W(tinyWorkload());

  DieHardAllocator DieHardA(heapOptions());
  LeaAllocator Lea(128 << 20);
  GcAllocator Gc(256 << 20);
  SystemAllocator System;

  uint64_t Reference = W.run(System).Checksum;
  EXPECT_EQ(W.run(DieHardA).Checksum, Reference) << "diehard";
  EXPECT_EQ(W.run(Lea).Checksum, Reference) << "lea";
  EXPECT_EQ(W.run(Gc).Checksum, Reference) << "gc";
}

TEST(SyntheticWorkloadTest, DifferentSeedsDifferentChecksums) {
  DieHardAllocator A(heapOptions());
  uint64_t C1 = SyntheticWorkload(tinyWorkload(1)).run(A).Checksum;
  uint64_t C2 = SyntheticWorkload(tinyWorkload(2)).run(A).Checksum;
  EXPECT_NE(C1, C2);
}

TEST(SyntheticWorkloadTest, AllFreesBalanceAllocations) {
  SyntheticWorkload W(tinyWorkload());
  DieHardAllocator A(heapOptions());
  WorkloadResult R = W.run(A);
  EXPECT_EQ(R.Allocations, R.Frees) << "the workload drains its live set";
  EXPECT_EQ(A.heap().bytesLive(), 0u);
  EXPECT_EQ(R.FailedAllocations, 0u);
}

TEST(SyntheticWorkloadTest, RespectsLiveTarget) {
  WorkloadParams P = tinyWorkload();
  P.MaxLive = 123;
  SyntheticWorkload W(P);
  DieHardAllocator A(heapOptions());
  WorkloadResult R = W.run(A);
  EXPECT_LE(R.PeakLive, 123u);
  EXPECT_GT(R.PeakLive, 60u) << "the live set should approach its target";
}

TEST(SyntheticWorkloadTest, GcSeesLiveSetThroughRoots) {
  // Under the collector, everything the workload still holds must survive
  // collections mid-run; the checksum verifies object contents at free
  // time, so corruption or premature reclamation would change it.
  WorkloadParams P = tinyWorkload();
  P.MemoryOps = 60000;
  SyntheticWorkload W(P);
  GcAllocator Gc(64 << 20, /*CollectThreshold=*/1 << 20);
  WorkloadResult R = W.run(Gc);
  EXPECT_GT(Gc.collections(), 0u) << "the run must actually collect";
  SystemAllocator System;
  EXPECT_EQ(R.Checksum, W.run(System).Checksum);
}

/// Every preset in both suites runs clean on DieHard and matches the
/// system allocator's checksum.
class SuitePresets : public ::testing::TestWithParam<WorkloadParams> {};

TEST_P(SuitePresets, RunsCleanOnDieHardAndSystem) {
  WorkloadParams P = GetParam();
  // Scale down for unit-test latency; cap the live set with it so the
  // scaled heap's per-class 1/M thresholds are never the binding limit.
  P.MemoryOps = std::min<uint64_t>(P.MemoryOps, 40000);
  P.ComputePerOp = std::min(P.ComputePerOp, 4);
  P.MaxLive = std::min<size_t>(P.MaxLive, 4000);
  SyntheticWorkload W(P);
  DieHardOptions O;
  O.HeapSize = 256 * 1024 * 1024;
  O.Seed = 13;
  DieHardAllocator A(O);
  SystemAllocator System;
  WorkloadResult RD = W.run(A);
  WorkloadResult RS = W.run(System);
  EXPECT_EQ(RD.Checksum, RS.Checksum) << P.Name;
  EXPECT_EQ(RD.FailedAllocations, 0u) << P.Name;
}

std::vector<WorkloadParams> allPresets() {
  auto A = allocationIntensiveSuite();
  auto B = generalPurposeSuite();
  A.insert(A.end(), B.begin(), B.end());
  return A;
}

INSTANTIATE_TEST_SUITE_P(AllSuites, SuitePresets,
                         ::testing::ValuesIn(allPresets()),
                         [](const auto &Info) {
                           std::string Name = Info.param.Name;
                           for (char &C : Name)
                             if (!isalnum(static_cast<unsigned char>(C)))
                               C = '_';
                           return Name;
                         });

} // namespace
} // namespace diehard
