//===- tests/interpose/MtVictim.cpp - multithreaded shim victim -----------===//
//
// Part of the DieHard reproduction (Berger & Zorn, PLDI 2006).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A standalone victim binary executed under LD_PRELOAD by the interpose
/// tests: several threads hammer malloc/realloc/calloc/free concurrently
/// and verify their own data. Prints "MT-OK" and exits 0 when every check
/// passes; any lost update, overlap, or crash fails the harness.
///
//===----------------------------------------------------------------------===//

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <thread>
#include <vector>

namespace {

bool hammer(unsigned ThreadId) {
  unsigned State = ThreadId * 2654435761u + 1;
  auto NextRand = [&State] {
    State = State * 1664525u + 1013904223u;
    return State;
  };

  struct Obj {
    unsigned char *Ptr;
    size_t Size;
    unsigned char Tag;
  };
  std::vector<Obj> Live;
  for (int Step = 0; Step < 20000; ++Step) {
    unsigned Op = NextRand() % 100;
    if (Op < 45 || Live.empty()) {
      size_t Size = 1 + NextRand() % 2048;
      auto *P = static_cast<unsigned char *>(
          (Op % 3 == 0) ? std::calloc(1, Size) : std::malloc(Size));
      if (P == nullptr)
        return false;
      if (Op % 3 == 0)
        for (size_t I = 0; I < Size; ++I)
          if (P[I] != 0)
            return false; // calloc must zero.
      auto Tag = static_cast<unsigned char>(NextRand());
      std::memset(P, Tag, Size);
      Live.push_back(Obj{P, Size, Tag});
    } else if (Op < 55) {
      Obj &O = Live[NextRand() % Live.size()];
      size_t NewSize = 1 + NextRand() % 4096;
      auto *Q = static_cast<unsigned char *>(std::realloc(O.Ptr, NewSize));
      if (Q == nullptr)
        return false;
      size_t Check = O.Size < NewSize ? O.Size : NewSize;
      for (size_t I = 0; I < Check; ++I)
        if (Q[I] != O.Tag)
          return false; // realloc must preserve the prefix.
      std::memset(Q, O.Tag, NewSize);
      O.Ptr = Q;
      O.Size = NewSize;
    } else {
      size_t Index = NextRand() % Live.size();
      Obj O = Live[Index];
      for (size_t I = 0; I < O.Size; ++I)
        if (O.Ptr[I] != O.Tag)
          return false; // Data must be intact at free time.
      std::free(O.Ptr);
      Live[Index] = Live.back();
      Live.pop_back();
    }
  }
  for (Obj &O : Live)
    std::free(O.Ptr);
  return true;
}

} // namespace

int main() {
  constexpr int NumThreads = 8;
  std::vector<std::thread> Threads;
  std::vector<int> Results(NumThreads, 0);
  for (int T = 0; T < NumThreads; ++T)
    Threads.emplace_back(
        [T, &Results] { Results[static_cast<size_t>(T)] =
                            hammer(static_cast<unsigned>(T) + 1) ? 1 : 0; });
  for (std::thread &Th : Threads)
    Th.join();
  for (int R : Results)
    if (!R) {
      std::puts("MT-FAIL");
      return 1;
    }
  std::puts("MT-OK");
  return 0;
}
