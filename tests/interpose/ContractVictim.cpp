//===- tests/interpose/ContractVictim.cpp ---------------------------------===//
//
// Part of the DieHard reproduction (Berger & Zorn, PLDI 2006).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Standalone victim asserting the POSIX/C allocation API contracts from
/// inside a plain process. InterposeTest runs it twice — once against the
/// system allocator, once under the DieHard shim — and requires both runs
/// to pass, so every assertion here is a *portable* contract, not a
/// DieHard implementation detail. Assertions where the shim's documented
/// behaviour deviates from glibc's (alignment above a page is refused with
/// ENOMEM instead of served) are gated on DIEHARD_CONTRACT_SHIM=1 in the
/// environment.
///
/// Prints CONTRACT-OK and exits 0 on success; prints one CONTRACT-FAIL
/// line naming the violated contract and exits 1 otherwise.
///
//===----------------------------------------------------------------------===//

#include <cerrno>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <cstring>

#include <malloc.h>
#include <unistd.h>

namespace {

int Failures = 0;

void check(bool Ok, const char *Contract) {
  if (!Ok) {
    std::printf("CONTRACT-FAIL: %s\n", Contract);
    ++Failures;
  }
}

bool aligned(const void *Ptr, size_t Alignment) {
  return (reinterpret_cast<uintptr_t>(Ptr) & (Alignment - 1)) == 0;
}

void checkMallocBasics() {
  // malloc returns distinct, writable, suitably aligned storage.
  void *A = std::malloc(64);
  void *B = std::malloc(64);
  check(A != nullptr && B != nullptr, "malloc(64) succeeds");
  check(A != B, "malloc returns distinct objects");
  check(aligned(A, sizeof(void *)) && aligned(B, sizeof(void *)),
        "malloc(64) is pointer-aligned");
  check(aligned(A, 16), "malloc(64) is 16-byte aligned");
  std::memset(A, 0xAB, 64);
  std::memset(B, 0xCD, 64);
  check(static_cast<unsigned char *>(A)[63] == 0xAB &&
            static_cast<unsigned char *>(B)[0] == 0xCD,
        "malloc storage is writable and disjoint");
  check(malloc_usable_size(A) >= 64,
        "malloc_usable_size >= requested size");
  std::free(A);
  std::free(B);

  // free(NULL) is a no-op; malloc(0) returns NULL or a freeable pointer.
  std::free(nullptr);
  void *Z = std::malloc(0);
  std::free(Z);

  // An impossible request fails cleanly with ENOMEM. (volatile defeats the
  // compiler's -Walloc-size-larger-than analysis — the oversized request
  // is the point of the test.)
  volatile size_t HugeSize = SIZE_MAX / 2;
  errno = 0;
  void *Huge = std::malloc(HugeSize);
  check(Huge == nullptr, "malloc(SIZE_MAX/2) returns NULL");
  check(errno == ENOMEM, "failed malloc sets errno to ENOMEM");
}

void checkCalloc() {
  // calloc zeroes every byte it hands out.
  unsigned char *P = static_cast<unsigned char *>(std::calloc(37, 13));
  check(P != nullptr, "calloc(37, 13) succeeds");
  if (P != nullptr) {
    bool AllZero = true;
    for (size_t I = 0; I < 37 * 13; ++I)
      AllZero = AllZero && P[I] == 0;
    check(AllZero, "calloc memory is zeroed");
    check(malloc_usable_size(P) >= 37 * 13,
          "calloc usable size covers Count * Size");
    std::free(P);
  }

  // Count * Size overflow must be refused, not wrapped into a tiny
  // allocation (CVE-class bug in several historical allocators). volatile
  // keeps the compiler from rejecting the deliberately absurd products.
  volatile size_t WrapCount = SIZE_MAX / 2;
  errno = 0;
  void *Wrap = std::calloc(WrapCount, 3);
  check(Wrap == nullptr, "calloc overflow (SIZE_MAX/2 * 3) returns NULL");
  check(errno == ENOMEM, "calloc overflow sets errno to ENOMEM");
  volatile size_t WrapBoth = SIZE_MAX;
  void *Wrap2 = std::calloc(WrapBoth, WrapBoth);
  check(Wrap2 == nullptr, "calloc(SIZE_MAX, SIZE_MAX) returns NULL");

  // Zero-element calloc is a valid (freeable) allocation.
  void *Zero = std::calloc(0, 16);
  std::free(Zero);
}

void checkRealloc() {
  // realloc(NULL, n) behaves as malloc(n).
  char *P = static_cast<char *>(std::realloc(nullptr, 24));
  check(P != nullptr, "realloc(NULL, 24) behaves as malloc");
  std::memcpy(P, "contract-roundtrip-data", 24);

  // Growth preserves the prefix.
  P = static_cast<char *>(std::realloc(P, 4096));
  check(P != nullptr, "realloc growth succeeds");
  check(P != nullptr && std::memcmp(P, "contract-roundtrip-data", 24) == 0,
        "realloc growth preserves contents");

  // Shrink preserves the (shorter) prefix.
  P = static_cast<char *>(std::realloc(P, 8));
  check(P != nullptr, "realloc shrink succeeds");
  check(P != nullptr && std::memcmp(P, "contract", 8) == 0,
        "realloc shrink preserves prefix");

  // realloc(p, 0) frees or returns a freeable pointer; either way no
  // crash and no double free afterwards.
  void *Q = std::realloc(P, 0);
  if (Q != nullptr)
    std::free(Q);
}

void checkAlignedAllocation() {
  bool ShimMode = std::getenv("DIEHARD_CONTRACT_SHIM") != nullptr;

  // posix_memalign honours every power-of-two alignment up to a page.
  for (size_t Alignment = sizeof(void *); Alignment <= 4096;
       Alignment *= 2) {
    void *Ptr = nullptr;
    int Err = ::posix_memalign(&Ptr, Alignment, Alignment * 2 + 3);
    check(Err == 0 && Ptr != nullptr, "posix_memalign succeeds up to 4096");
    check(Ptr == nullptr || aligned(Ptr, Alignment),
          "posix_memalign result is aligned as requested");
    std::free(Ptr);
  }

  // Invalid alignments are EINVAL, and *Out is left alone.
  void *Sentinel = reinterpret_cast<void *>(0x5A5A);
  void *Out = Sentinel;
  check(::posix_memalign(&Out, 3, 64) == EINVAL,
        "posix_memalign(non-power-of-two) returns EINVAL");
  check(::posix_memalign(&Out, sizeof(void *) / 2, 64) == EINVAL,
        "posix_memalign(alignment < sizeof(void*)) returns EINVAL");
  check(Out == Sentinel, "failed posix_memalign leaves *Out untouched");

  // aligned_alloc alignment validation: C requires it, but glibc only
  // enforces it from 2.38 — so the refusal is asserted under the shim
  // (which always validates), not against the system allocator.
  if (ShimMode) {
    errno = 0;
    void *Bad = ::aligned_alloc(24, 48);
    check(Bad == nullptr, "aligned_alloc(non-power-of-two) returns NULL");
    check(errno == EINVAL, "aligned_alloc(non-power-of-two) sets EINVAL");
  }

  void *Good = ::aligned_alloc(256, 512);
  check(Good != nullptr && aligned(Good, 256),
        "aligned_alloc(256, 512) returns 256-aligned storage");
  std::free(Good);

  if (ShimMode) {
    // Documented shim divergence: the randomized layout caps alignment at
    // a page, so larger requests fail cleanly with ENOMEM instead of
    // being served.
    void *Wide = nullptr;
    check(::posix_memalign(&Wide, 8192, 8192) == ENOMEM,
          "shim posix_memalign(8192) returns ENOMEM");
    errno = 0;
    void *WideA = ::aligned_alloc(8192, 8192);
    check(WideA == nullptr && errno == ENOMEM,
          "shim aligned_alloc(8192) fails with ENOMEM");
  } else {
    void *Wide = nullptr;
    if (::posix_memalign(&Wide, 8192, 8192) == 0) {
      check(aligned(Wide, 8192), "system posix_memalign(8192) is aligned");
      std::free(Wide);
    }
  }
}

void checkUsableSizeMonotonicity() {
  // Usable size is a floor the caller may rely on: writing exactly that
  // many bytes must be safe, and a subsequent realloc to within it must
  // preserve them.
  for (size_t Size = 1; Size <= 20000; Size = Size * 3 + 1) {
    unsigned char *P = static_cast<unsigned char *>(std::malloc(Size));
    check(P != nullptr, "malloc across the size spectrum succeeds");
    if (P == nullptr)
      continue;
    size_t Usable = malloc_usable_size(P);
    check(Usable >= Size, "usable size never undercuts the request");
    std::memset(P, 0x5C, Usable);
    std::free(P);
  }
}

} // namespace

int main() {
  checkMallocBasics();
  checkCalloc();
  checkRealloc();
  checkAlignedAllocation();
  checkUsableSizeMonotonicity();
  if (Failures != 0)
    return 1;
  std::printf("CONTRACT-OK\n");
  return 0;
}
