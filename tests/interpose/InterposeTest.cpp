//===- tests/interpose/InterposeTest.cpp ----------------------------------===//
//
// Part of the DieHard reproduction (Berger & Zorn, PLDI 2006).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// End-to-end tests of the LD_PRELOAD shim (Section 5.1): unmodified system
/// binaries run correctly with every malloc/free redirected into DieHard.
/// The library path is provided by CMake via DIEHARD_SHIM_PATH.
///
//===----------------------------------------------------------------------===//

#include <gtest/gtest.h>

#include <cstdio>
#include <cstdlib>
#include <string>

#include <sys/wait.h>
#include <unistd.h>

namespace {

#ifndef DIEHARD_SHIM_PATH
#error "DIEHARD_SHIM_PATH must be defined by the build"
#endif

/// Runs `/bin/sh -c Command` with libdiehard.so preloaded plus extra
/// environment assignments; returns {exit code, captured stdout}.
struct RunResult {
  int ExitCode;
  std::string Output;
};

RunResult runPreloaded(const std::string &Command,
                       const std::string &ExtraEnv = "") {
  std::string Full = ExtraEnv + " LD_PRELOAD=" + DIEHARD_SHIM_PATH + " " +
                     Command;
  FILE *Pipe = ::popen(Full.c_str(), "r");
  if (Pipe == nullptr)
    return {-1, ""};
  std::string Output;
  char Buf[4096];
  size_t N;
  while ((N = std::fread(Buf, 1, sizeof(Buf), Pipe)) > 0)
    Output.append(Buf, N);
  int Status = ::pclose(Pipe);
  int Code = WIFEXITED(Status) ? WEXITSTATUS(Status) : -1;
  return {Code, Output};
}

TEST(InterposeTest, EchoRunsUnderDieHard) {
  RunResult R = runPreloaded("echo diehard-works");
  EXPECT_EQ(R.ExitCode, 0);
  EXPECT_EQ(R.Output, "diehard-works\n");
}

TEST(InterposeTest, SortAllocatesHeavily) {
  // sort(1) makes real malloc/realloc/free traffic.
  RunResult R = runPreloaded("printf 'c\\nb\\na\\n' | sort");
  EXPECT_EQ(R.ExitCode, 0);
  EXPECT_EQ(R.Output, "a\nb\nc\n");
}

TEST(InterposeTest, SedAndGrepPipeline) {
  RunResult R = runPreloaded(
      "printf 'one\\ntwo\\nthree\\n' | grep t | sed s/t/T/");
  EXPECT_EQ(R.ExitCode, 0);
  EXPECT_EQ(R.Output, "Two\nThree\n");
}

TEST(InterposeTest, LargeAllocationsViaAwk) {
  // Build a ~1 MB string inside awk: exercises realloc growth into the
  // large-object (mmap) path.
  RunResult R = runPreloaded(
      "awk 'BEGIN { s=\"x\"; for (i=0;i<20;i++) s = s s; print length(s) }'");
  EXPECT_EQ(R.ExitCode, 0);
  EXPECT_EQ(R.Output, "1048576\n");
}

TEST(InterposeTest, SeedEnvironmentControlsDeterminism) {
  // With DIEHARD_SEED fixed, behaviour must be stable (and correct).
  RunResult A = runPreloaded("printf '2\\n1\\n3\\n' | sort -n",
                             "DIEHARD_SEED=12345");
  RunResult B = runPreloaded("printf '2\\n1\\n3\\n' | sort -n",
                             "DIEHARD_SEED=12345");
  EXPECT_EQ(A.ExitCode, 0);
  EXPECT_EQ(A.Output, "1\n2\n3\n");
  EXPECT_EQ(B.Output, A.Output);
}

TEST(InterposeTest, HeapSizeEnvironmentIsHonoured) {
  // A tiny heap still works for a small program.
  RunResult R = runPreloaded("echo small-heap",
                             "DIEHARD_HEAP_SIZE=50331648");
  EXPECT_EQ(R.ExitCode, 0);
  EXPECT_EQ(R.Output, "small-heap\n");
}

TEST(InterposeTest, ReplicatedFillModeWorks) {
  // Random object fill must not break correct programs (they initialize
  // what they read).
  RunResult R = runPreloaded("printf 'b\\na\\n' | sort",
                             "DIEHARD_REPLICATED=1");
  EXPECT_EQ(R.ExitCode, 0);
  EXPECT_EQ(R.Output, "a\nb\n");
}

TEST(InterposeTest, MultithreadedMallocTraffic) {
  // Eight threads of concurrent malloc/calloc/realloc/free under the shim;
  // the victim verifies its own data and prints MT-OK.
  RunResult R = runPreloaded(DIEHARD_MT_VICTIM_PATH,
                             "DIEHARD_HEAP_SIZE=402653184");
  EXPECT_EQ(R.ExitCode, 0);
  EXPECT_EQ(R.Output, "MT-OK\n");
}

TEST(InterposeTest, MultithreadedUnderReplicatedFill) {
  RunResult R = runPreloaded(DIEHARD_MT_VICTIM_PATH, "DIEHARD_REPLICATED=1");
  EXPECT_EQ(R.ExitCode, 0);
  EXPECT_EQ(R.Output, "MT-OK\n");
}

TEST(InterposeTest, ShardedCrossThreadFreeStress) {
  // Producer/consumer cross-thread frees plus thread churn, with the heap
  // split into four shards: frees must be routed to the owning shard.
  RunResult R = runPreloaded(DIEHARD_MT_SHARD_VICTIM_PATH,
                             "DIEHARD_SHARDS=4");
  EXPECT_EQ(R.ExitCode, 0);
  EXPECT_EQ(R.Output, "MT-SHARD-OK\n");
}

TEST(InterposeTest, ShardedStressWithSingleShard) {
  // One shard is the degenerate (fully serialized) configuration; the same
  // workload must be correct there too.
  RunResult R = runPreloaded(DIEHARD_MT_SHARD_VICTIM_PATH,
                             "DIEHARD_SHARDS=1");
  EXPECT_EQ(R.ExitCode, 0);
  EXPECT_EQ(R.Output, "MT-SHARD-OK\n");
}

TEST(InterposeTest, ShardedStressWithDefaultShards) {
  // No DIEHARD_SHARDS: the shim picks one shard per CPU.
  RunResult R = runPreloaded(DIEHARD_MT_SHARD_VICTIM_PATH);
  EXPECT_EQ(R.ExitCode, 0);
  EXPECT_EQ(R.Output, "MT-SHARD-OK\n");
}

TEST(InterposeTest, ShardedStressUnderReplicatedFill) {
  // Replica mode random-fills objects; combined with explicit sharding the
  // stress must still verify (fills happen before the object is handed
  // out).
  RunResult R = runPreloaded(DIEHARD_MT_SHARD_VICTIM_PATH,
                             "DIEHARD_REPLICATED=1 DIEHARD_SHARDS=4");
  EXPECT_EQ(R.ExitCode, 0);
  EXPECT_EQ(R.Output, "MT-SHARD-OK\n");
}

TEST(InterposeTest, OverflowRoutingTogglesViaEnvironment) {
  // DIEHARD_OVERFLOW only changes behaviour at partition saturation, which
  // a healthy victim never reaches — both settings must run the full
  // cross-thread stress cleanly (the saturation semantics themselves are
  // unit-tested at the ShardedHeap layer).
  RunResult On = runPreloaded(DIEHARD_MT_SHARD_VICTIM_PATH,
                              "DIEHARD_SHARDS=4 DIEHARD_OVERFLOW=1");
  EXPECT_EQ(On.ExitCode, 0);
  EXPECT_EQ(On.Output, "MT-SHARD-OK\n");
  RunResult Off = runPreloaded(DIEHARD_MT_SHARD_VICTIM_PATH,
                               "DIEHARD_SHARDS=4 DIEHARD_OVERFLOW=0");
  EXPECT_EQ(Off.ExitCode, 0);
  EXPECT_EQ(Off.Output, "MT-SHARD-OK\n");
}

TEST(InterposeTest, ThreadCacheServesTheFullStress) {
  // The default sharded configuration runs with the thread-cache fast path
  // on; pin the size explicitly and let the victim's phase 3 verify (via
  // the dlsym hooks) that no cached slot survives the thread joins.
  RunResult R = runPreloaded(DIEHARD_MT_SHARD_VICTIM_PATH,
                             "DIEHARD_SHARDS=4 DIEHARD_TCACHE=16");
  EXPECT_EQ(R.ExitCode, 0);
  EXPECT_EQ(R.Output, "MT-SHARD-OK\n");
}

TEST(InterposeTest, ThreadCacheDisabledStillPasses) {
  // DIEHARD_TCACHE=0 keeps every operation on the locked paths.
  RunResult R = runPreloaded(DIEHARD_MT_SHARD_VICTIM_PATH,
                             "DIEHARD_SHARDS=4 DIEHARD_TCACHE=0");
  EXPECT_EQ(R.ExitCode, 0);
  EXPECT_EQ(R.Output, "MT-SHARD-OK\n");
}

TEST(InterposeTest, TinyThreadCacheForcesConstantRefills) {
  // K=1 degenerates to a refill per allocation — the worst case for the
  // refill/flush machinery, which must still be correct.
  RunResult R = runPreloaded(DIEHARD_MT_SHARD_VICTIM_PATH,
                             "DIEHARD_SHARDS=2 DIEHARD_TCACHE=1");
  EXPECT_EQ(R.ExitCode, 0);
  EXPECT_EQ(R.Output, "MT-SHARD-OK\n");
}

TEST(InterposeTest, AdaptiveThreadCacheServesTheFullStress) {
  // DIEHARD_TCACHE_ADAPT moves every cache's per-class K under the storm
  // (growth on the hot phases, idle sweeps between them) while the
  // victim's phase 3 pins the hygiene invariants: zero cached slots after
  // joins, and the adaptive-K hook honouring its bounds.
  RunResult R = runPreloaded(
      DIEHARD_MT_SHARD_VICTIM_PATH,
      "DIEHARD_SHARDS=4 DIEHARD_TCACHE=8 DIEHARD_TCACHE_ADAPT=1");
  EXPECT_EQ(R.ExitCode, 0);
  EXPECT_EQ(R.Output, "MT-SHARD-OK\n");
}

TEST(InterposeTest, AdaptiveTinyCacheStaysCorrect) {
  // The smallest base with adaptation on: K starts at 1, the floor
  // clamps at 2, growth runs 1 -> 2 -> ... -> 8 (the 8x cap). Constant
  // boundary traffic for the grow/shrink arithmetic.
  RunResult R = runPreloaded(
      DIEHARD_MT_SHARD_VICTIM_PATH,
      "DIEHARD_SHARDS=2 DIEHARD_TCACHE=1 DIEHARD_TCACHE_ADAPT=1");
  EXPECT_EQ(R.ExitCode, 0);
  EXPECT_EQ(R.Output, "MT-SHARD-OK\n");
}

TEST(InterposeTest, SweeperServesTheFullStress) {
  // A fast sweeper (5 ms passes) runs concurrently with the whole
  // cross-thread stress: drains, cache aging and page returns must never
  // corrupt an object, and the victim's phase 5 demands at least one
  // completed pass.
  RunResult R = runPreloaded(
      DIEHARD_MT_SHARD_VICTIM_PATH,
      "DIEHARD_SHARDS=4 DIEHARD_TCACHE=8 DIEHARD_SWEEPER=1 "
      "DIEHARD_SWEEP_MS=5");
  EXPECT_EQ(R.ExitCode, 0);
  EXPECT_EQ(R.Output, "MT-SHARD-OK\n");
}

TEST(InterposeTest, SweeperWithUncachedFreesUsesSidecars) {
  // DIEHARD_TCACHE=0 sends every cross-shard free straight to the owning
  // partition's lock-free sidecar; only the sweeper (and allocation-path
  // materialization) ever drains them.
  RunResult R = runPreloaded(
      DIEHARD_MT_SHARD_VICTIM_PATH,
      "DIEHARD_SHARDS=4 DIEHARD_TCACHE=0 DIEHARD_SWEEPER=1 "
      "DIEHARD_SWEEP_MS=5");
  EXPECT_EQ(R.ExitCode, 0);
  EXPECT_EQ(R.Output, "MT-SHARD-OK\n");
}

TEST(InterposeTest, ReplicationForcesTheSweeperOff) {
  // Replicas must stay deterministic per seed, so DIEHARD_SWEEPER=1 is
  // ignored in replicated mode. The victim's phase 5 would fail waiting
  // for a pass if the sweeper were (incorrectly) running yet reporting
  // zero — here the hooks report 0 passes and the phase is skipped only
  // because the victim checks the env; what matters is the stress stays
  // clean and deterministic replication machinery never sees a
  // maintenance thread.
  RunResult R = runPreloaded(DIEHARD_MT_VICTIM_PATH,
                             "DIEHARD_REPLICATED=1 DIEHARD_SWEEPER=1 "
                             "DIEHARD_SWEEP_MS=5");
  EXPECT_EQ(R.ExitCode, 0);
  EXPECT_EQ(R.Output, "MT-OK\n");
}

TEST(InterposeTest, StatsDumpEmitsJsonAtExit) {
  // (Sweeper counter fields are asserted below even with the sweeper off:
  // they must always be present, reading 0.)
  // A DIEHARD_STATS value other than 0/1 names a file to append the JSON
  // line to — the robust capture for pipelines, whose stderr the shim's
  // startup dup would otherwise point at the test harness.
  std::string StatsFile =
      ::testing::TempDir() + "diehard-stats-dump.json";
  std::remove(StatsFile.c_str());
  RunResult R = runPreloaded("sort /etc/hostname > /dev/null && echo ok",
                             "DIEHARD_STATS=" + StatsFile +
                                 " DIEHARD_TCACHE=8");
  EXPECT_EQ(R.ExitCode, 0);
  EXPECT_EQ(R.Output, "ok\n");
  std::FILE *F = std::fopen(StatsFile.c_str(), "r");
  ASSERT_NE(F, nullptr) << "no stats dump written to " << StatsFile;
  char Buf[4096];
  size_t N = std::fread(Buf, 1, sizeof(Buf) - 1, F);
  std::fclose(F);
  std::remove(StatsFile.c_str());
  std::string Dump(Buf, N);
  EXPECT_NE(Dump.find("\"diehard_stats\""), std::string::npos) << Dump;
  EXPECT_NE(Dump.find("\"allocations\""), std::string::npos);
  EXPECT_NE(Dump.find("\"cache_refills\""), std::string::npos);
  EXPECT_NE(Dump.find("\"remote_frees\""), std::string::npos);
  EXPECT_NE(Dump.find("\"sidecar_drains\""), std::string::npos);
  EXPECT_NE(Dump.find("\"sweep_passes\""), std::string::npos);
  EXPECT_NE(Dump.find("\"sweeper_drained\""), std::string::npos);
  EXPECT_NE(Dump.find("\"aged_caches\""), std::string::npos);
  EXPECT_NE(Dump.find("\"pages_returned\""), std::string::npos);
}

TEST(InterposeTest, CppBinaryWithNewDelete) {
  // ls uses C++-free paths but covers opendir/qsort allocation patterns;
  // this at least exercises a real multi-library binary end to end.
  RunResult R = runPreloaded("ls / > /dev/null && echo ok");
  EXPECT_EQ(R.ExitCode, 0);
  EXPECT_EQ(R.Output, "ok\n");
}

// --- API-contract victim -----------------------------------------------------
// ContractVictim.cpp asserts the portable POSIX/C allocation contracts
// (calloc overflow refusal, posix_memalign validation, realloc semantics,
// malloc_usable_size floors, errno on failure). Running it both ways keeps
// the suite honest: a contract the system allocator fails would be a bogus
// test, and a contract the shim fails is a real finding.

TEST(InterposeTest, ContractVictimPassesAgainstSystemAllocator) {
  // No LD_PRELOAD: run the victim directly against glibc.
  FILE *Pipe = ::popen(DIEHARD_CONTRACT_VICTIM_PATH, "r");
  ASSERT_NE(Pipe, nullptr);
  std::string Output;
  char Buf[4096];
  size_t N;
  while ((N = std::fread(Buf, 1, sizeof(Buf), Pipe)) > 0)
    Output.append(Buf, N);
  int Status = ::pclose(Pipe);
  EXPECT_EQ(WIFEXITED(Status) ? WEXITSTATUS(Status) : -1, 0) << Output;
  EXPECT_EQ(Output, "CONTRACT-OK\n");
}

TEST(InterposeTest, ContractVictimPassesUnderShim) {
  // DIEHARD_CONTRACT_SHIM additionally enables the documented shim
  // divergences (alignment above a page refused with ENOMEM, aligned_alloc
  // validation glibc only gained in 2.38).
  RunResult R = runPreloaded(DIEHARD_CONTRACT_VICTIM_PATH,
                             "DIEHARD_CONTRACT_SHIM=1");
  EXPECT_EQ(R.ExitCode, 0) << R.Output;
  EXPECT_EQ(R.Output, "CONTRACT-OK\n");
}

TEST(InterposeTest, ContractVictimPassesUnderShardedCachedShim) {
  // The contracts must hold in the scaled configuration too: shards plus
  // the lock-free thread-cache tier in front of them.
  RunResult R = runPreloaded(
      DIEHARD_CONTRACT_VICTIM_PATH,
      "DIEHARD_CONTRACT_SHIM=1 DIEHARD_SHARDS=4 DIEHARD_TCACHE=8");
  EXPECT_EQ(R.ExitCode, 0) << R.Output;
  EXPECT_EQ(R.Output, "CONTRACT-OK\n");
}

TEST(InterposeTest, ContractVictimPassesUnderReplicatedFill) {
  // Random object fill must never leak through calloc's zeroing or
  // realloc's preserved prefix.
  RunResult R = runPreloaded(DIEHARD_CONTRACT_VICTIM_PATH,
                             "DIEHARD_CONTRACT_SHIM=1 DIEHARD_REPLICATED=1");
  EXPECT_EQ(R.ExitCode, 0) << R.Output;
  EXPECT_EQ(R.Output, "CONTRACT-OK\n");
}

} // namespace
