//===- tests/interpose/MtShardVictim.cpp - sharded shim stress victim -----===//
//
// Part of the DieHard reproduction (Berger & Zorn, PLDI 2006).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A standalone victim binary executed under LD_PRELOAD by the interpose
/// tests to stress the sharded heap end to end. It goes beyond MtVictim in
/// exactly the ways sharding can break:
///
///   1. Cross-thread frees: producer threads allocate and tag objects,
///      consumer threads verify and free them, so nearly every free happens
///      on a thread (and shard) other than the allocating one.
///   2. Thread churn: waves of short-lived threads, far more than any sane
///      shard count, so thread-token assignment has to wrap.
///   3. Large objects and malloc_usable_size across threads.
///   4. Thread-cache hygiene: when running under the shim with the
///      thread-cache tier enabled, the shim's observability hooks (looked
///      up via dlsym, absent when not preloaded) must report zero cached
///      slots once every worker thread has joined and the main thread has
///      flushed — i.e. thread-exit flushing leaks nothing.
///   5. Sweeper liveness: with DIEHARD_SWEEPER=1 the background epoch
///      sweeper must complete at least one pass while the victim waits
///      after the stress; its hooks must be callable regardless.
///
/// Prints "MT-SHARD-OK" and exits 0 when every check passes.
///
//===----------------------------------------------------------------------===//

#include <dlfcn.h>
#include <malloc.h>

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <mutex>
#include <thread>
#include <vector>

namespace {

struct Obj {
  unsigned char *Ptr;
  size_t Size;
  unsigned char Tag;
};

/// Bounded multi-producer multi-consumer handoff queue.
class Handoff {
public:
  void push(const Obj &O) {
    std::unique_lock<std::mutex> G(Lock);
    NotFull.wait(G, [this] { return Items.size() < 512; });
    Items.push_back(O);
    NotEmpty.notify_one();
  }

  bool pop(Obj &O) {
    std::unique_lock<std::mutex> G(Lock);
    NotEmpty.wait(G, [this] { return !Items.empty() || Closed; });
    if (Items.empty())
      return false;
    O = Items.back();
    Items.pop_back();
    NotFull.notify_one();
    return true;
  }

  void close() {
    std::lock_guard<std::mutex> G(Lock);
    Closed = true;
    NotEmpty.notify_all();
  }

private:
  std::mutex Lock;
  std::condition_variable NotEmpty, NotFull;
  std::vector<Obj> Items;
  bool Closed = false;
};

std::atomic<int> Failures{0};

unsigned nextRand(unsigned &State) {
  State = State * 1664525u + 1013904223u;
  return State;
}

/// Phase 1 producer: allocates tagged objects (occasionally large or
/// calloc'd) and hands every one of them to the consumers.
void producer(Handoff &Q, unsigned Id, int Count) {
  unsigned State = Id * 2654435761u + 1;
  for (int I = 0; I < Count; ++I) {
    unsigned R = nextRand(State);
    size_t Size = (R % 16 == 0) ? 17000 + R % 50000 : 1 + R % 2048;
    unsigned char *P;
    if (R % 5 == 0) {
      P = static_cast<unsigned char *>(std::calloc(1, Size));
      if (P != nullptr)
        for (size_t J = 0; J < Size; ++J)
          if (P[J] != 0) {
            ++Failures;
            break;
          }
    } else {
      P = static_cast<unsigned char *>(std::malloc(Size));
    }
    if (P == nullptr) {
      ++Failures;
      return;
    }
    if (::malloc_usable_size(P) < Size) {
      ++Failures;
      std::free(P);
      return;
    }
    auto Tag = static_cast<unsigned char>(nextRand(State));
    std::memset(P, Tag, Size);
    Q.push(Obj{P, Size, Tag});
  }
}

/// Phase 1 consumer: verifies and frees objects allocated by the producers
/// — on a different thread, hence (with several shards) usually a
/// different shard than the one that owns the object.
void consumer(Handoff &Q) {
  Obj O;
  while (Q.pop(O)) {
    for (size_t I = 0; I < O.Size; ++I)
      if (O.Ptr[I] != O.Tag) {
        ++Failures;
        break;
      }
    std::free(O.Ptr);
  }
}

/// Phase 2 worker: self-contained malloc/realloc/free churn, run in waves
/// of short-lived threads to cycle through shard tokens.
void churn(unsigned Id) {
  unsigned State = Id * 48271u + 7;
  std::vector<Obj> Live;
  for (int Step = 0; Step < 2000; ++Step) {
    unsigned Op = nextRand(State) % 100;
    if (Op < 50 || Live.empty()) {
      size_t Size = 1 + nextRand(State) % 1024;
      auto *P = static_cast<unsigned char *>(std::malloc(Size));
      if (P == nullptr) {
        ++Failures;
        return;
      }
      auto Tag = static_cast<unsigned char>(nextRand(State));
      std::memset(P, Tag, Size);
      Live.push_back(Obj{P, Size, Tag});
    } else if (Op < 60) {
      Obj &O = Live[nextRand(State) % Live.size()];
      size_t NewSize = 1 + nextRand(State) % 2048;
      auto *Q = static_cast<unsigned char *>(std::realloc(O.Ptr, NewSize));
      if (Q == nullptr) {
        ++Failures;
        return;
      }
      size_t Check = O.Size < NewSize ? O.Size : NewSize;
      for (size_t I = 0; I < Check; ++I)
        if (Q[I] != O.Tag) {
          ++Failures;
          return;
        }
      std::memset(Q, O.Tag, NewSize);
      O.Ptr = Q;
      O.Size = NewSize;
    } else {
      size_t Index = nextRand(State) % Live.size();
      Obj O = Live[Index];
      for (size_t I = 0; I < O.Size; ++I)
        if (O.Ptr[I] != O.Tag) {
          ++Failures;
          return;
        }
      std::free(O.Ptr);
      Live[Index] = Live.back();
      Live.pop_back();
    }
  }
  for (Obj &O : Live)
    std::free(O.Ptr);
}

} // namespace

int main() {
  // Phase 1: cross-thread free through a producer/consumer handoff.
  {
    Handoff Q;
    constexpr int Producers = 4;
    constexpr int Consumers = 4;
    constexpr int PerProducer = 5000;
    std::vector<std::thread> Threads;
    for (int P = 0; P < Producers; ++P)
      Threads.emplace_back(producer, std::ref(Q),
                           static_cast<unsigned>(P) + 1, PerProducer);
    std::vector<std::thread> Eaters;
    for (int C = 0; C < Consumers; ++C)
      Eaters.emplace_back(consumer, std::ref(Q));
    for (std::thread &T : Threads)
      T.join();
    Q.close();
    for (std::thread &T : Eaters)
      T.join();
  }

  // Phase 2: thread churn, several waves of short-lived threads.
  for (int Wave = 0; Wave < 3; ++Wave) {
    std::vector<std::thread> Threads;
    for (int T = 0; T < 12; ++T)
      Threads.emplace_back(churn,
                           static_cast<unsigned>(Wave * 100 + T) + 1);
    for (std::thread &T : Threads)
      T.join();
  }

  // Phase 3: thread-cache hygiene. Every worker has joined (their exit
  // destructors flushed their caches); after flushing the main thread's
  // own cache, no claimed slot may remain parked anywhere. The hooks only
  // resolve when the DieHard shim is preloaded — run stand-alone, this
  // phase is a no-op.
  auto FlushCache = reinterpret_cast<void (*)()>(
      ::dlsym(RTLD_DEFAULT, "diehard_flush_thread_cache"));
  auto CachedSlots = reinterpret_cast<size_t (*)()>(
      ::dlsym(RTLD_DEFAULT, "diehard_cached_slots"));
  if (FlushCache != nullptr && CachedSlots != nullptr) {
    FlushCache();
    size_t Leaked = CachedSlots();
    if (Leaked != 0) {
      std::printf("MT-SHARD-FAIL: %zu cached slots leaked past joins\n",
                  Leaked);
      return 1;
    }
  }

  // Sidecar/adaptive observability hooks: diehard_remote_frees() counts
  // cross-shard frees pushed lock-free (0 is legal — with one shard there
  // is nothing to cross); diehard_tcache_target_k() must reject bad
  // classes and stay within the cache's hard bounds for good ones.
  auto RemoteFrees = reinterpret_cast<size_t (*)()>(
      ::dlsym(RTLD_DEFAULT, "diehard_remote_frees"));
  auto TargetK = reinterpret_cast<size_t (*)(int)>(
      ::dlsym(RTLD_DEFAULT, "diehard_tcache_target_k"));
  if (RemoteFrees != nullptr && TargetK != nullptr) {
    (void)RemoteFrees(); // Must be callable and lock-free at any time.
    if (TargetK(-1) != 0 || TargetK(12) != 0) {
      std::puts("MT-SHARD-FAIL: out-of-range class must report K == 0");
      return 1;
    }
    for (int C = 0; C < 12; ++C)
      if (TargetK(C) > 256) {
        std::printf("MT-SHARD-FAIL: class %d K=%zu above the hard cap\n",
                    C, TargetK(C));
        return 1;
      }
  }

  // Sweeper observability hooks: always callable; with DIEHARD_SWEEPER=1
  // the background thread must complete at least one pass within a few
  // intervals of all this allocator traffic going quiet.
  auto SweepPasses = reinterpret_cast<size_t (*)()>(
      ::dlsym(RTLD_DEFAULT, "diehard_sweep_passes"));
  auto AgedCaches = reinterpret_cast<size_t (*)()>(
      ::dlsym(RTLD_DEFAULT, "diehard_aged_caches"));
  auto PagesReturned = reinterpret_cast<size_t (*)()>(
      ::dlsym(RTLD_DEFAULT, "diehard_pages_returned"));
  if (SweepPasses != nullptr && AgedCaches != nullptr &&
      PagesReturned != nullptr) {
    (void)AgedCaches();    // Must be callable and lock-free at any time.
    (void)PagesReturned();
    const char *Sweeper = std::getenv("DIEHARD_SWEEPER");
    const char *Replicated = std::getenv("DIEHARD_REPLICATED");
    // Replicated mode forces the sweeper off (determinism), so no pass
    // will ever complete there no matter what the env asks for.
    bool Replicating = Replicated != nullptr && Replicated[0] == '1';
    if (Sweeper != nullptr && Sweeper[0] == '1' && !Replicating) {
      bool Swept = false;
      for (int Tick = 0; Tick < 400 && !Swept; ++Tick) {
        Swept = SweepPasses() > 0;
        if (!Swept)
          std::this_thread::sleep_for(std::chrono::milliseconds(5));
      }
      if (!Swept) {
        std::puts("MT-SHARD-FAIL: sweeper enabled but no pass completed");
        return 1;
      }
    }
  }

  if (Failures.load() != 0) {
    std::puts("MT-SHARD-FAIL");
    return 1;
  }
  std::puts("MT-SHARD-OK");
  return 0;
}
