//===- tests/fuzz/FuzzCorpusTest.cpp --------------------------------------===//
//
// Part of the DieHard reproduction (Berger & Zorn, PLDI 2006).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Tier-1 regression replay of the committed fuzz corpus
/// (tests/fuzz/corpus/, path injected as DIEHARD_FUZZ_CORPUS_DIR). Every
/// input runs through the full differential driver — decoded heap
/// configuration, injected error classes, reference-model checks, forced
/// quiescence audit — and must come back clean. The corpus is curated for
/// coverage (tools/fuzz_replay --emit), so the suite also asserts the
/// aggregate exercises all five injected error classes and both the cached
/// and uncached configurations; a corpus refresh that loses coverage fails
/// here, not silently in the nightly job.
///
//===----------------------------------------------------------------------===//

#include "fuzz/FuzzDriver.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <cstdio>
#include <string>
#include <vector>

#include <dirent.h>

namespace diehard {
namespace fuzz {
namespace {

#ifndef DIEHARD_FUZZ_CORPUS_DIR
#error "DIEHARD_FUZZ_CORPUS_DIR must be defined by the build"
#endif

/// Sorted list of regular files in the corpus directory.
std::vector<std::string> corpusFiles() {
  std::vector<std::string> Files;
  DIR *D = ::opendir(DIEHARD_FUZZ_CORPUS_DIR);
  if (D == nullptr)
    return Files;
  while (struct dirent *E = ::readdir(D)) {
    std::string Name = E->d_name;
    if (Name == "." || Name == ".." || Name == "README.md")
      continue;
    Files.push_back(std::string(DIEHARD_FUZZ_CORPUS_DIR) + "/" + Name);
  }
  ::closedir(D);
  std::sort(Files.begin(), Files.end());
  return Files;
}

std::vector<uint8_t> readFile(const std::string &Path) {
  std::vector<uint8_t> Bytes;
  std::FILE *F = std::fopen(Path.c_str(), "rb");
  if (F == nullptr)
    return Bytes;
  uint8_t Buf[4096];
  size_t N;
  while ((N = std::fread(Buf, 1, sizeof(Buf), F)) > 0)
    Bytes.insert(Bytes.end(), Buf, Buf + N);
  std::fclose(F);
  return Bytes;
}

TEST(FuzzCorpusTest, EveryCommittedInputReplaysClean) {
  std::vector<std::string> Files = corpusFiles();
  ASSERT_FALSE(Files.empty())
      << "no corpus at " << DIEHARD_FUZZ_CORPUS_DIR
      << " — regenerate with: fuzz_replay --emit tests/fuzz/corpus";

  uint64_t Injected[NumErrorClasses] = {};
  uint64_t TotalOps = 0;
  bool SawCached = false, SawUncached = false, SawMultiShard = false;
  bool SawWorkers = false;
  bool SawPageReturnFree = false, SawPageReturnOff = false;
  bool SawMeshing = false;

  for (const std::string &Path : Files) {
    std::vector<uint8_t> Bytes = readFile(Path);
    ASSERT_FALSE(Bytes.empty()) << Path;
    FuzzResult R = runFuzzSequence(Bytes.data(), Bytes.size());
    EXPECT_TRUE(R.Ok) << Path << ": " << R.Message;
    TotalOps += R.OpsExecuted;
    for (int C = 0; C < NumErrorClasses; ++C)
      Injected[C] += R.Injected[C];
    (R.Config.ThreadCacheSlots != 0 ? SawCached : SawUncached) = true;
    SawMultiShard = SawMultiShard || R.Config.NumShards > 1;
    SawWorkers = SawWorkers || R.Config.Workers > 0;
    SawPageReturnFree =
        SawPageReturnFree || R.Config.PageReturn == PageReturnPolicy::Free;
    SawPageReturnOff =
        SawPageReturnOff || R.Config.PageReturn == PageReturnPolicy::Off;
    SawMeshing = SawMeshing || R.Config.Meshing;
  }

  EXPECT_GT(TotalOps, 0u);
  for (int C = 0; C < NumErrorClasses; ++C)
    EXPECT_GT(Injected[C], 0u)
        << "corpus never injects " << errorClassName(C)
        << " — coverage regressed; refresh with fuzz_replay --emit";
  EXPECT_TRUE(SawCached) << "corpus never enables the thread-cache tier";
  EXPECT_TRUE(SawUncached) << "corpus never runs the locked paths";
  EXPECT_TRUE(SawMultiShard) << "corpus never runs multiple shards";
  EXPECT_TRUE(SawWorkers) << "corpus never spawns cross-thread workers";
  EXPECT_TRUE(SawPageReturnFree)
      << "corpus never selects DIEHARD_PAGE_RETURN=free";
  EXPECT_TRUE(SawPageReturnOff)
      << "corpus never selects DIEHARD_PAGE_RETURN=off";
  EXPECT_TRUE(SawMeshing) << "corpus never enables DIEHARD_MESH";
}

TEST(FuzzCorpusTest, DeterministicInputsReplayBitIdentically) {
  // The satellite determinism contract: (input bytes, base seed) is the
  // complete replay key for every non-sweeper configuration — two runs
  // must agree on the placement trace hash and the final books, not just
  // on pass/fail.
  std::vector<std::string> Files = corpusFiles();
  ASSERT_FALSE(Files.empty());

  size_t Compared = 0;
  for (const std::string &Path : Files) {
    std::vector<uint8_t> Bytes = readFile(Path);
    FuzzResult A = runFuzzSequence(Bytes.data(), Bytes.size());
    ASSERT_TRUE(A.Ok) << Path << ": " << A.Message;
    if (!A.Config.deterministic())
      continue;
    FuzzResult B = runFuzzSequence(Bytes.data(), Bytes.size());
    ASSERT_TRUE(B.Ok) << Path << ": " << B.Message;
    EXPECT_EQ(A.TraceHash, B.TraceHash) << Path;
    EXPECT_EQ(A.OpsExecuted, B.OpsExecuted) << Path;
    EXPECT_EQ(A.ModelAllocs, B.ModelAllocs) << Path;
    EXPECT_EQ(A.FailedAllocs, B.FailedAllocs) << Path;
    EXPECT_EQ(A.FinalStats.Allocations, B.FinalStats.Allocations) << Path;
    EXPECT_EQ(A.FinalStats.Frees, B.FinalStats.Frees) << Path;
    EXPECT_EQ(A.FinalStats.IgnoredFrees, B.FinalStats.IgnoredFrees) << Path;
    EXPECT_EQ(A.FinalStats.ReallocRejects, B.FinalStats.ReallocRejects)
        << Path;
    for (int C = 0; C < NumErrorClasses; ++C)
      EXPECT_EQ(A.Injected[C], B.Injected[C]) << Path;
    ++Compared;
  }
  EXPECT_GT(Compared, 0u)
      << "corpus has no deterministic (sweeper-off) entry to compare";
}

TEST(FuzzCorpusTest, DifferentSeedsStillPassDifferentially) {
  // Randomized placement must never change the oracle verdict: the same
  // inputs replayed under a different base seed see different layouts but
  // identical bookkeeping outcomes.
  std::vector<std::string> Files = corpusFiles();
  ASSERT_FALSE(Files.empty());
  size_t Checked = 0;
  for (const std::string &Path : Files) {
    if (Checked == 4) // A few inputs suffice; the nightly sweeps more.
      break;
    std::vector<uint8_t> Bytes = readFile(Path);
    FuzzResult R =
        runFuzzSequence(Bytes.data(), Bytes.size(), /*BaseSeed=*/0xA5A5F00D);
    EXPECT_TRUE(R.Ok) << Path << " under alternate seed: " << R.Message;
    ++Checked;
  }
}

TEST(FuzzCorpusTest, DegenerateInputsAreSafe) {
  // The decoder must make *every* byte string a valid (possibly empty)
  // sequence: null, empty, and sub-header inputs run and audit clean.
  FuzzResult Empty = runFuzzSequence(nullptr, 0);
  EXPECT_TRUE(Empty.Ok) << Empty.Message;
  EXPECT_EQ(Empty.OpsExecuted, 0u);

  for (size_t Len = 1; Len <= 8; ++Len) {
    std::vector<uint8_t> Tiny(Len, 0xFF);
    FuzzResult R = runFuzzSequence(Tiny.data(), Tiny.size());
    EXPECT_TRUE(R.Ok) << "len " << Len << ": " << R.Message;
  }

  // All-zero and all-0x55 payloads long enough to decode real ops.
  std::vector<uint8_t> Zeros(256, 0);
  EXPECT_TRUE(runFuzzSequence(Zeros.data(), Zeros.size()).Ok);
  std::vector<uint8_t> Fives(256, 0x55);
  EXPECT_TRUE(runFuzzSequence(Fives.data(), Fives.size()).Ok);
}

} // namespace
} // namespace fuzz
} // namespace diehard
