//===- tests/replication/ReplicationEdgeTest.cpp --------------------------===//
//
// Part of the DieHard reproduction (Berger & Zorn, PLDI 2006).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Edge cases of the replicated framework: chunk-boundary outputs, large
/// input broadcast, empty outputs, nonzero exits, buffer exhaustion, and a
/// replica-count property sweep.
///
//===----------------------------------------------------------------------===//

#include "replication/Replication.h"

#include <gtest/gtest.h>

#include <cstring>
#include <string>

namespace diehard {
namespace {

ReplicationOptions edgeOptions(int Replicas = 3) {
  ReplicationOptions O;
  O.Replicas = Replicas;
  O.MasterSeed = 0xED6E;
  O.HeapSize = 16 * 1024 * 1024;
  O.TimeoutMillis = 20000;
  return O;
}

TEST(ReplicationEdgeTest, EmptyOutputAgrees) {
  ReplicaManager Manager(edgeOptions());
  ReplicationResult R = Manager.run([](ReplicaContext &) { return 0; }, "");
  EXPECT_TRUE(R.Success);
  EXPECT_TRUE(R.Output.empty());
  EXPECT_EQ(R.Survivors, 3);
}

TEST(ReplicationEdgeTest, OutputExactlyOneChunk) {
  ReplicaManager Manager(edgeOptions());
  ReplicationResult R = Manager.run(
      [](ReplicaContext &Ctx) {
        std::string Chunk(4096, 'c'); // Exactly the barrier size.
        Ctx.write(Chunk);
        return 0;
      },
      "");
  EXPECT_TRUE(R.Success);
  EXPECT_EQ(R.Output.size(), 4096u);
}

TEST(ReplicationEdgeTest, OutputOneByteOverChunk) {
  ReplicaManager Manager(edgeOptions());
  ReplicationResult R = Manager.run(
      [](ReplicaContext &Ctx) {
        std::string Data(4097, 'd');
        Ctx.write(Data);
        return 0;
      },
      "");
  EXPECT_TRUE(R.Success);
  EXPECT_EQ(R.Output.size(), 4097u);
}

TEST(ReplicationEdgeTest, LargeInputBroadcast) {
  ReplicaManager Manager(edgeOptions());
  std::string Input(1 << 20, 'i'); // 1 MB through 64 KB pipes: needs the
                                   // incremental reader in each replica.
  ReplicationResult R = Manager.run(
      [](ReplicaContext &Ctx) {
        std::string In = Ctx.readAllInput();
        char Line[32];
        int N = std::snprintf(Line, sizeof(Line), "%zu", In.size());
        Ctx.write(Line, static_cast<size_t>(N));
        return 0;
      },
      Input);
  EXPECT_TRUE(R.Success);
  EXPECT_EQ(R.Output, "1048576");
}

TEST(ReplicationEdgeTest, NonzeroExitReplicaIsExcluded) {
  ReplicaManager Manager(edgeOptions());
  ReplicationResult R = Manager.run(
      [](ReplicaContext &Ctx) {
        Ctx.write("shared-output\n");
        return Ctx.replicaIndex() == 1 ? 9 : 0;
      },
      "");
  EXPECT_TRUE(R.Success);
  EXPECT_EQ(R.Output, "shared-output\n");
  EXPECT_EQ(R.Fates[1], ReplicaFate::NonzeroExit);
  EXPECT_EQ(R.Survivors, 2);
}

TEST(ReplicationEdgeTest, AllReplicasCrashIsCleanFailure) {
  ReplicaManager Manager(edgeOptions());
  ReplicationResult R = Manager.run(
      [](ReplicaContext &) -> int { ::abort(); }, "");
  EXPECT_FALSE(R.Success);
  for (ReplicaFate F : R.Fates)
    EXPECT_EQ(F, ReplicaFate::Crashed);
}

TEST(ReplicationEdgeTest, BufferExhaustionFailsTheReplica) {
  ReplicationOptions O = edgeOptions();
  O.BufferCapacity = 8192; // Tiny output budget.
  ReplicaManager Manager(O);
  ReplicationResult R = Manager.run(
      [](ReplicaContext &Ctx) {
        std::string Chunk(4096, 'x');
        for (int I = 0; I < 8; ++I)
          if (!Ctx.write(Chunk))
            return 3; // Exhausted: abort, as documented.
        return 0;
      },
      "");
  // Every replica exhausts identically and exits nonzero: no agreement.
  EXPECT_FALSE(R.Success);
}

TEST(ReplicationEdgeTest, SingleReplicaCrashFails) {
  ReplicaManager Manager(edgeOptions(1));
  ReplicationResult R = Manager.run(
      [](ReplicaContext &) -> int { ::abort(); }, "");
  EXPECT_FALSE(R.Success);
  EXPECT_EQ(R.Fates[0], ReplicaFate::Crashed);
}

TEST(ReplicationEdgeTest, PartialOutputBeforeCrashIsNotCommittedAlone) {
  // A replica that writes half a chunk then dies must not contribute; the
  // healthy majority's output is committed.
  ReplicaManager Manager(edgeOptions());
  ReplicationResult R = Manager.run(
      [](ReplicaContext &Ctx) -> int {
        if (Ctx.replicaIndex() == 2) {
          Ctx.write("garbage-prefix");
          ::abort();
        }
        Ctx.write("healthy-output\n");
        return 0;
      },
      "");
  EXPECT_TRUE(R.Success);
  EXPECT_EQ(R.Output, "healthy-output\n");
  EXPECT_EQ(R.Fates[2], ReplicaFate::Crashed);
}

/// Property sweep: agreement and commit hold for any legal replica count.
class ReplicaCountSweep : public ::testing::TestWithParam<int> {};

TEST_P(ReplicaCountSweep, DeterministicBodyAlwaysCommits) {
  ReplicaManager Manager(edgeOptions(GetParam()));
  ReplicationResult R = Manager.run(
      [](ReplicaContext &Ctx) {
        std::string In = Ctx.readAllInput();
        Ctx.write("echo:" + In + "\n");
        return 0;
      },
      "ping");
  EXPECT_TRUE(R.Success);
  EXPECT_EQ(R.Output, "echo:ping\n");
  EXPECT_EQ(R.Survivors, GetParam());
}

INSTANTIATE_TEST_SUITE_P(Counts, ReplicaCountSweep,
                         ::testing::Values(1, 3, 4, 5, 7));

} // namespace
} // namespace diehard
