//===- tests/replication/ReplicationTest.cpp ------------------------------===//
//
// Part of the DieHard reproduction (Berger & Zorn, PLDI 2006).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// End-to-end tests of replicated execution and output voting.
///
//===----------------------------------------------------------------------===//

#include "replication/Replication.h"

#include "core/DieHardHeap.h"

#include <gtest/gtest.h>

#include <cstring>

namespace diehard {
namespace {

ReplicationOptions testOptions(int Replicas = 3) {
  ReplicationOptions O;
  O.Replicas = Replicas;
  O.MasterSeed = 0xD1E8A2D;
  O.HeapSize = 24 * 1024 * 1024;
  O.TimeoutMillis = 20000;
  return O;
}

TEST(ReplicationTest, AgreeingReplicasCommitOutput) {
  ReplicaManager Manager(testOptions());
  ReplicationResult R = Manager.run(
      [](ReplicaContext &Ctx) {
        DieHardHeap Heap(Ctx.heapOptions());
        auto *P = static_cast<char *>(Heap.allocate(64));
        std::strcpy(P, "deterministic");
        Ctx.write(std::string(P) + "-output\n");
        Heap.deallocate(P);
        return 0;
      },
      "");
  EXPECT_TRUE(R.Success);
  EXPECT_FALSE(R.UninitReadDetected);
  EXPECT_EQ(R.Output, "deterministic-output\n");
  EXPECT_EQ(R.Survivors, 3);
}

TEST(ReplicationTest, SingleReplicaMode) {
  ReplicaManager Manager(testOptions(1));
  ReplicationResult R = Manager.run(
      [](ReplicaContext &Ctx) {
        Ctx.write("alone\n");
        return 0;
      },
      "");
  EXPECT_TRUE(R.Success);
  EXPECT_EQ(R.Output, "alone\n");
  EXPECT_EQ(R.Survivors, 1);
}

TEST(ReplicationTest, InputIsBroadcastToAllReplicas) {
  ReplicaManager Manager(testOptions());
  ReplicationResult R = Manager.run(
      [](ReplicaContext &Ctx) {
        std::string In = Ctx.readAllInput();
        Ctx.write("echo:" + In);
        return 0;
      },
      "hello replicas");
  EXPECT_TRUE(R.Success);
  EXPECT_EQ(R.Output, "echo:hello replicas");
}

TEST(ReplicationTest, ReplicasHaveDistinctSeeds) {
  ReplicaManager Manager(testOptions());
  ReplicationResult R = Manager.run(
      [](ReplicaContext &Ctx) {
        // Output the seed: all replicas will disagree, which the voter
        // must flag rather than commit.
        char Buf[32];
        std::snprintf(Buf, sizeof(Buf), "%llu",
                      static_cast<unsigned long long>(Ctx.heapOptions().Seed));
        Ctx.write(Buf, std::strlen(Buf));
        return 0;
      },
      "");
  EXPECT_FALSE(R.Success);
  EXPECT_TRUE(R.UninitReadDetected)
      << "pairwise disagreement is the uninit-read signature";
}

TEST(ReplicationTest, CrashedReplicaIsOutvoted) {
  ReplicaManager Manager(testOptions());
  ReplicationResult R = Manager.run(
      [](ReplicaContext &Ctx) {
        if (Ctx.replicaIndex() == 1)
          ::abort(); // One replica dies; the other two agree.
        Ctx.write("survivors-agree\n");
        return 0;
      },
      "");
  EXPECT_TRUE(R.Success);
  EXPECT_EQ(R.Output, "survivors-agree\n");
  EXPECT_EQ(R.Fates[1], ReplicaFate::Crashed);
  EXPECT_EQ(R.Survivors, 2);
}

TEST(ReplicationTest, DivergentReplicaIsKilledByVote) {
  ReplicaManager Manager(testOptions());
  ReplicationResult R = Manager.run(
      [](ReplicaContext &Ctx) {
        if (Ctx.replicaIndex() == 2)
          Ctx.write("i-am-different\n");
        else
          Ctx.write("majority-view\n");
        return 0;
      },
      "");
  EXPECT_TRUE(R.Success);
  EXPECT_EQ(R.Output, "majority-view\n");
  EXPECT_EQ(R.Fates[2], ReplicaFate::KilledByVote);
  EXPECT_EQ(R.Survivors, 2);
}

TEST(ReplicationTest, UninitializedReadIsDetected) {
  // The flagship replicated-mode property (Section 3.2): a value read from
  // uninitialized heap memory propagates to output; because every replica
  // fills objects with different random data, outputs differ and the voter
  // detects the bug.
  ReplicaManager Manager(testOptions());
  ReplicationResult R = Manager.run(
      [](ReplicaContext &Ctx) {
        DieHardHeap Heap(Ctx.heapOptions());
        auto *P = static_cast<uint32_t *>(Heap.allocate(64));
        char Buf[16];
        std::snprintf(Buf, sizeof(Buf), "%08x", P[3]); // Uninitialized read!
        Ctx.write(Buf, 8);
        return 0;
      },
      "");
  EXPECT_FALSE(R.Success);
  EXPECT_TRUE(R.UninitReadDetected);
}

TEST(ReplicationTest, InitializedDataAgreesDespiteRandomFill) {
  // Control for the test above: writing before reading produces agreement,
  // so the random fill never causes false positives on correct programs.
  ReplicaManager Manager(testOptions());
  ReplicationResult R = Manager.run(
      [](ReplicaContext &Ctx) {
        DieHardHeap Heap(Ctx.heapOptions());
        auto *P = static_cast<uint32_t *>(Heap.allocate(64));
        P[3] = 0xCAFEF00D;
        char Buf[16];
        std::snprintf(Buf, sizeof(Buf), "%08x", P[3]);
        Ctx.write(Buf, 8);
        return 0;
      },
      "");
  EXPECT_TRUE(R.Success);
  EXPECT_EQ(R.Output, "cafef00d");
}

TEST(ReplicationTest, MultiChunkOutputVotesIncrementally) {
  // Output far larger than one 4K chunk exercises the barrier protocol.
  ReplicaManager Manager(testOptions());
  ReplicationResult R = Manager.run(
      [](ReplicaContext &Ctx) {
        for (int I = 0; I < 5000; ++I) {
          char Line[32];
          int N = std::snprintf(Line, sizeof(Line), "line %d\n", I);
          Ctx.write(Line, static_cast<size_t>(N));
        }
        return 0;
      },
      "");
  EXPECT_TRUE(R.Success);
  EXPECT_GT(R.Output.size(), 4096u * 8);
  EXPECT_EQ(R.Output.substr(0, 7), "line 0\n");
  EXPECT_NE(R.Output.find("line 4999\n"), std::string::npos);
}

TEST(ReplicationTest, MidStreamDivergenceCaughtAtBarrier) {
  ReplicaManager Manager(testOptions());
  ReplicationResult R = Manager.run(
      [](ReplicaContext &Ctx) {
        for (int I = 0; I < 3000; ++I) {
          char Line[32];
          // Replica 0 silently corrupts one line deep in the stream.
          bool Corrupt = Ctx.replicaIndex() == 0 && I == 2000;
          int N = std::snprintf(Line, sizeof(Line), "line %d\n",
                                Corrupt ? -1 : I);
          Ctx.write(Line, static_cast<size_t>(N));
        }
        return 0;
      },
      "");
  EXPECT_TRUE(R.Success);
  EXPECT_EQ(R.Fates[0], ReplicaFate::KilledByVote);
  EXPECT_NE(R.Output.find("line 2000\n"), std::string::npos)
      << "the committed stream carries the majority's data";
  EXPECT_EQ(R.Output.find("line -1\n"), std::string::npos);
}

TEST(ReplicationTest, HungReplicaIsTimedOut) {
  ReplicationOptions O = testOptions();
  O.TimeoutMillis = 1500;
  ReplicaManager Manager(O);
  ReplicationResult R = Manager.run(
      [](ReplicaContext &Ctx) {
        if (Ctx.replicaIndex() == 0) {
          for (;;)
            ::usleep(1000); // Infinite loop: never reaches the barrier.
        }
        Ctx.write("done\n");
        return 0;
      },
      "");
  // The two healthy replicas agree after the watchdog clears the hung one.
  EXPECT_TRUE(R.Success);
  EXPECT_EQ(R.Output, "done\n");
  EXPECT_EQ(R.Fates[0], ReplicaFate::TimedOut);
}

TEST(ReplicationTest, VirtualTimeIsIdenticalAcrossReplicas) {
  ReplicaManager Manager(testOptions());
  ReplicationResult R = Manager.run(
      [](ReplicaContext &Ctx) {
        char Buf[32];
        std::snprintf(Buf, sizeof(Buf), "t=%llu\n",
                      static_cast<unsigned long long>(
                          Ctx.virtualTimeNanos()));
        Ctx.write(Buf, std::strlen(Buf));
        return 0;
      },
      "");
  EXPECT_TRUE(R.Success) << "intercepted clocks keep replicas equivalent";
}

} // namespace
} // namespace diehard
