//===- tests/baselines/GcAllocatorTest.cpp --------------------------------===//
//
// Part of the DieHard reproduction (Berger & Zorn, PLDI 2006).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Tests for the conservative GC baseline.
///
//===----------------------------------------------------------------------===//

#include "baselines/GcAllocator.h"

#include <gtest/gtest.h>

#include <cstring>
#include <vector>

namespace diehard {
namespace {

TEST(GcAllocatorTest, AllocatesWritableMemory) {
  GcAllocator G(32 << 20);
  void *P = G.allocate(100);
  ASSERT_NE(P, nullptr);
  std::memset(P, 0xAA, 100);
  EXPECT_GE(G.heapBytes(), 100u);
}

TEST(GcAllocatorTest, FreeIsNoop) {
  GcAllocator G(32 << 20);
  void *P = G.allocate(64);
  ASSERT_NE(P, nullptr);
  size_t Before = G.liveObjects();
  G.deallocate(P);
  G.deallocate(P); // Double free: harmless.
  int Stack;
  G.deallocate(&Stack); // Invalid free: harmless.
  EXPECT_EQ(G.liveObjects(), Before);
}

TEST(GcAllocatorTest, RootedObjectsSurviveCollection) {
  GcAllocator G(32 << 20);
  void *Roots[4] = {};
  G.registerRootRange(Roots, sizeof(Roots));
  Roots[0] = G.allocate(128);
  Roots[1] = G.allocate(256);
  ASSERT_NE(Roots[0], nullptr);
  std::memset(Roots[0], 0x42, 128);
  G.collect();
  EXPECT_EQ(G.liveObjects(), 2u);
  EXPECT_EQ(static_cast<unsigned char *>(Roots[0])[127], 0x42)
      << "contents must survive collection";
}

TEST(GcAllocatorTest, UnreachableObjectsAreCollected) {
  GcAllocator G(32 << 20);
  void *Roots[1] = {};
  G.registerRootRange(Roots, sizeof(Roots));
  for (int I = 0; I < 100; ++I)
    G.allocate(64); // No root holds these.
  EXPECT_EQ(G.liveObjects(), 100u);
  G.collect();
  EXPECT_EQ(G.liveObjects(), 0u);
}

TEST(GcAllocatorTest, TransitiveReachabilityMarks) {
  GcAllocator G(32 << 20);
  void *Roots[1] = {};
  G.registerRootRange(Roots, sizeof(Roots));
  // Build a linked chain: root -> a -> b -> c.
  auto **A = static_cast<void **>(G.allocate(sizeof(void *) * 2));
  auto **B = static_cast<void **>(G.allocate(sizeof(void *) * 2));
  auto **C = static_cast<void **>(G.allocate(sizeof(void *) * 2));
  ASSERT_NE(C, nullptr);
  A[0] = B;
  B[0] = C;
  C[0] = nullptr;
  Roots[0] = A;
  G.allocate(64); // Garbage.
  G.collect();
  EXPECT_EQ(G.liveObjects(), 3u) << "the chain survives, the garbage dies";
}

TEST(GcAllocatorTest, InteriorPointersKeepObjectsAlive) {
  GcAllocator G(32 << 20);
  char *Roots[1] = {};
  G.registerRootRange(Roots, sizeof(Roots));
  auto *P = static_cast<char *>(G.allocate(256));
  ASSERT_NE(P, nullptr);
  Roots[0] = P + 100; // Interior pointer only.
  G.collect();
  EXPECT_EQ(G.liveObjects(), 1u);
}

TEST(GcAllocatorTest, CollectedMemoryIsRecycled) {
  GcAllocator G(1 << 20, /*CollectThreshold=*/1 << 30);
  void *Roots[1] = {};
  G.registerRootRange(Roots, sizeof(Roots));
  // Allocate more total bytes than the arena; survival requires recycling.
  for (int Round = 0; Round < 64; ++Round) {
    for (int I = 0; I < 64; ++I)
      ASSERT_NE(G.allocate(1024), nullptr)
          << "round " << Round << " allocation " << I;
    G.collect();
  }
  EXPECT_GE(G.collections(), 64u);
}

TEST(GcAllocatorTest, AutomaticCollectionTriggers) {
  GcAllocator G(32 << 20, /*CollectThreshold=*/64 * 1024);
  void *Roots[1] = {};
  G.registerRootRange(Roots, sizeof(Roots));
  for (int I = 0; I < 10000; ++I)
    G.allocate(64);
  EXPECT_GT(G.collections(), 0u) << "threshold must force collections";
  EXPECT_LT(G.liveObjects(), 10000u);
}

TEST(GcAllocatorTest, DanglingPointerIsSafe) {
  // The BDW property the paper's Table 1 records: dangling pointers cannot
  // be overwritten because free is ignored and the object stays live while
  // referenced.
  GcAllocator G(32 << 20);
  char *Roots[1] = {};
  G.registerRootRange(Roots, sizeof(Roots));
  auto *P = static_cast<char *>(G.allocate(64));
  ASSERT_NE(P, nullptr);
  std::memset(P, 0x77, 64);
  Roots[0] = P;
  G.deallocate(P); // Premature free: ignored.
  for (int I = 0; I < 1000; ++I)
    G.allocate(64); // Would recycle P under malloc/free.
  G.collect();
  for (int I = 0; I < 64; ++I)
    EXPECT_EQ(static_cast<unsigned char>(P[I]), 0x77u);
}

TEST(GcAllocatorTest, UnregisterRootDropsProtection) {
  GcAllocator G(32 << 20);
  void *Roots[1] = {};
  G.registerRootRange(Roots, sizeof(Roots));
  Roots[0] = G.allocate(64);
  G.collect();
  EXPECT_EQ(G.liveObjects(), 1u);
  G.unregisterRootRange(Roots);
  G.collect();
  EXPECT_EQ(G.liveObjects(), 0u);
}

} // namespace
} // namespace diehard
