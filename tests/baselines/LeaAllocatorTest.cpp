//===- tests/baselines/LeaAllocatorTest.cpp -------------------------------===//
//
// Part of the DieHard reproduction (Berger & Zorn, PLDI 2006).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Tests for the Lea-style baseline, including its corruptible-metadata
/// failure modes.
///
//===----------------------------------------------------------------------===//

#include "baselines/LeaAllocator.h"

#include "support/Rng.h"
#include "workloads/ForkHarness.h"

#include <gtest/gtest.h>

#include <cstring>
#include <vector>

namespace diehard {
namespace {

TEST(LeaAllocatorTest, AllocatesAlignedWritableMemory) {
  LeaAllocator A(16 << 20);
  for (size_t Size : {1u, 7u, 16u, 100u, 4096u, 100000u}) {
    void *P = A.allocate(Size);
    ASSERT_NE(P, nullptr) << Size;
    EXPECT_EQ(reinterpret_cast<uintptr_t>(P) % 16, 0u)
        << "user pointers must be 16-byte aligned";
    std::memset(P, 0x5C, Size);
    A.deallocate(P);
  }
}

TEST(LeaAllocatorTest, ChunkSizeCoversRequest) {
  LeaAllocator A(16 << 20);
  for (size_t Size : {1u, 8u, 40u, 41u, 1000u}) {
    void *P = A.allocate(Size);
    ASSERT_NE(P, nullptr);
    EXPECT_GE(A.getChunkSize(P), Size);
    A.deallocate(P);
  }
}

TEST(LeaAllocatorTest, FreeMemoryIsReused) {
  LeaAllocator A(16 << 20);
  void *P = A.allocate(100);
  ASSERT_NE(P, nullptr);
  A.deallocate(P);
  void *Q = A.allocate(100);
  EXPECT_EQ(Q, P) << "LIFO freelist reuse — the dangling-pointer hazard "
                     "DieHard randomizes away";
  A.deallocate(Q);
}

TEST(LeaAllocatorTest, CoalescingMergesNeighbours) {
  LeaAllocator A(16 << 20);
  void *P1 = A.allocate(100);
  void *P2 = A.allocate(100);
  void *P3 = A.allocate(100);
  ASSERT_NE(P3, nullptr);
  A.deallocate(P1);
  A.deallocate(P2); // Coalesces with P1's chunk.
  // A request the size of both chunks together must now fit in the merged
  // chunk (first-fit from the bins, not the wilderness).
  void *Big = A.allocate(200);
  ASSERT_NE(Big, nullptr);
  EXPECT_EQ(Big, P1) << "merged chunk starts where P1 did";
  A.deallocate(Big);
  A.deallocate(P3);
  EXPECT_TRUE(A.checkHeapIntegrity());
}

TEST(LeaAllocatorTest, SplitLeavesUsableRemainder) {
  LeaAllocator A(16 << 20);
  void *Big = A.allocate(1024);
  ASSERT_NE(Big, nullptr);
  A.deallocate(Big);
  void *Small = A.allocate(64);
  EXPECT_EQ(Small, Big) << "split serves from the front of the free chunk";
  void *Rest = A.allocate(700);
  ASSERT_NE(Rest, nullptr);
  A.deallocate(Small);
  A.deallocate(Rest);
  EXPECT_TRUE(A.checkHeapIntegrity());
}

TEST(LeaAllocatorTest, ExhaustionReturnsNull) {
  LeaAllocator A(1 << 20);
  std::vector<void *> Held;
  for (;;) {
    void *P = A.allocate(64 * 1024);
    if (P == nullptr)
      break;
    Held.push_back(P);
  }
  EXPECT_GT(Held.size(), 10u);
  EXPECT_LT(Held.size(), 17u);
  for (void *P : Held)
    A.deallocate(P);
}

TEST(LeaAllocatorTest, RandomStressKeepsIntegrity) {
  LeaAllocator A(64 << 20);
  Rng Rand(99);
  std::vector<std::pair<void *, size_t>> Live;
  for (int Step = 0; Step < 30000; ++Step) {
    if (Live.empty() || (Rand.next() & 1)) {
      size_t Size = 1 + Rand.nextBounded(2000);
      void *P = A.allocate(Size);
      if (P == nullptr)
        continue;
      std::memset(P, static_cast<int>(Size & 0xFF), Size);
      Live.push_back({P, Size});
    } else {
      size_t I = Rand.nextBounded(static_cast<uint32_t>(Live.size()));
      // Verify our fill survived before freeing.
      auto *Bytes = static_cast<unsigned char *>(Live[I].first);
      for (size_t B = 0; B < Live[I].second; B += 97)
        ASSERT_EQ(Bytes[B], static_cast<unsigned char>(Live[I].second & 0xFF));
      A.deallocate(Live[I].first);
      Live[I] = Live.back();
      Live.pop_back();
    }
  }
  for (auto &[P, S] : Live)
    A.deallocate(P);
  EXPECT_TRUE(A.checkHeapIntegrity());
}

TEST(LeaAllocatorTest, BytesInUseTracksLifecycle) {
  LeaAllocator A(16 << 20);
  EXPECT_EQ(A.bytesInUse(), 0u);
  void *P = A.allocate(1000);
  EXPECT_GE(A.bytesInUse(), 1000u);
  A.deallocate(P);
  EXPECT_EQ(A.bytesInUse(), 0u);
}

// The failure-mode tests: these document the exact behaviours the paper's
// Table 1 lists as "undefined" for freelist allocators, and which DieHard
// avoids. Each runs in a forked child because the outcome is corruption.

TEST(LeaAllocatorFailureTest, OverflowCorruptsBoundaryTags) {
  LeaAllocator A(16 << 20);
  char *P = static_cast<char *>(A.allocate(64));
  char *Q = static_cast<char *>(A.allocate(64));
  ASSERT_NE(Q, nullptr);
  // Overflow P by a little: with boundary tags this lands in Q's header.
  std::memset(P, 0xFF, 64 + 16);
  EXPECT_FALSE(A.checkHeapIntegrity())
      << "a small overflow must corrupt heap metadata";
}

TEST(LeaAllocatorFailureTest, DoubleFreeCorruptsOrCrashes) {
  ForkOutcome Outcome = runInFork([] {
    LeaAllocator A(16 << 20);
    void *P = A.allocate(64);
    A.deallocate(P);
    A.deallocate(P); // Double free: freelist now cyclic/corrupt.
    // Churn to surface the corruption.
    void *X = A.allocate(64);
    void *Y = A.allocate(64);
    // A double-freed chunk can be handed out twice.
    if (X == Y)
      return 2;
    return A.checkHeapIntegrity() ? 0 : 3;
  });
  // Any of: crash, duplicate allocation, detected corruption — but not a
  // clean, correct run.
  EXPECT_FALSE(Outcome.cleanExit())
      << "double free must corrupt a freelist allocator";
}

TEST(LeaAllocatorFailureTest, DanglingWriteCorruptsFreelist) {
  ForkOutcome Outcome = runInFork([] {
    LeaAllocator A(16 << 20);
    void **P = static_cast<void **>(A.allocate(64));
    A.deallocate(P);
    // Dangling write: clobbers the intrusive freelist links.
    P[0] = reinterpret_cast<void *>(0xDEADBEEF);
    P[1] = reinterpret_cast<void *>(0xDEADBEEF);
    // The next same-size allocations walk the corrupted list.
    A.allocate(64);
    A.allocate(64);
    A.allocate(64);
    return 0;
  });
  // The child's body always returns 0, so any abnormal end is the crash we
  // expect. Plain builds die by SIGSEGV; under ASan the segfault is
  // intercepted and reported via exit(1) instead of re-raising the signal.
  EXPECT_TRUE(Outcome.Signaled || (Outcome.Exited && Outcome.ExitCode != 0))
      << "walking a clobbered freelist should crash";
}

} // namespace
} // namespace diehard
