//===- tests/baselines/SelectiveAllocatorTest.cpp -------------------------===//
//
// Part of the DieHard reproduction (Berger & Zorn, PLDI 2006).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Tests for the selective per-size-class allocator.
///
//===----------------------------------------------------------------------===//

#include "baselines/SelectiveAllocator.h"

#include "workloads/SyntheticWorkload.h"

#include <gtest/gtest.h>

#include <cstring>

namespace diehard {
namespace {

DieHardOptions smallHeap() {
  DieHardOptions O;
  O.HeapSize = 48 * 1024 * 1024;
  O.Seed = 0x5E1;
  return O;
}

TEST(SelectiveAllocatorTest, MaskRoutesClasses) {
  // Protect classes 0..5 (8..256 bytes); larger small objects fall back.
  SelectiveAllocator A(0x3F, smallHeap(), 64 << 20);
  void *Small = A.allocate(64);
  void *Big = A.allocate(4096);
  ASSERT_NE(Small, nullptr);
  ASSERT_NE(Big, nullptr);
  EXPECT_TRUE(A.heap().isInHeap(Small));
  EXPECT_FALSE(A.heap().isInHeap(Big));
  EXPECT_TRUE(A.fallback().isInArena(Big));
  A.deallocate(Small);
  A.deallocate(Big);
}

TEST(SelectiveAllocatorTest, IsProtectedQuery) {
  SelectiveAllocator A(0x3F, smallHeap());
  EXPECT_TRUE(A.isProtected(8));
  EXPECT_TRUE(A.isProtected(256));
  EXPECT_FALSE(A.isProtected(257));
  EXPECT_FALSE(A.isProtected(16384));
  EXPECT_TRUE(A.isProtected(100000)) << "large objects keep guard pages";
}

TEST(SelectiveAllocatorTest, FullMaskEqualsDieHardEverywhere) {
  SelectiveAllocator A(~uint32_t(0), smallHeap());
  for (size_t Size : {8u, 100u, 1000u, 16384u}) {
    void *P = A.allocate(Size);
    ASSERT_NE(P, nullptr);
    EXPECT_TRUE(A.heap().isInHeap(P)) << Size;
    A.deallocate(P);
  }
}

TEST(SelectiveAllocatorTest, ProtectedClassIgnoresDoubleFree) {
  SelectiveAllocator A(0x3F, smallHeap());
  void *P = A.allocate(64);
  A.deallocate(P);
  A.deallocate(P); // DieHard side: ignored, no corruption.
  void *X = A.allocate(64);
  void *Y = A.allocate(64);
  EXPECT_NE(X, Y);
  A.deallocate(X);
  A.deallocate(Y);
}

TEST(SelectiveAllocatorTest, FallbackIntegrityUnderCorrectUsage) {
  SelectiveAllocator A(0x0F, smallHeap(), 64 << 20);
  std::vector<void *> Held;
  for (int I = 0; I < 500; ++I) {
    void *P = A.allocate(512 + (I % 512)); // All unprotected.
    ASSERT_NE(P, nullptr);
    Held.push_back(P);
  }
  for (void *P : Held)
    A.deallocate(P);
  EXPECT_TRUE(A.fallback().checkHeapIntegrity());
}

TEST(SelectiveAllocatorTest, WorkloadChecksumMatchesSystem) {
  SelectiveAllocator A(0x3F, smallHeap(), 256 << 20);
  WorkloadParams P;
  P.Name = "sel";
  P.MemoryOps = 30000;
  P.MinSize = 8;
  P.MaxSize = 2048;
  P.MaxLive = 800;
  P.Seed = 3;
  SyntheticWorkload W(P);
  uint64_t Selective = W.run(A).Checksum;
  SystemAllocator System;
  EXPECT_EQ(Selective, W.run(System).Checksum);
}

TEST(SelectiveAllocatorTest, ForeignFreeIgnored) {
  SelectiveAllocator A(0x3F, smallHeap());
  int Stack;
  A.deallocate(&Stack);
  A.deallocate(nullptr);
  EXPECT_GE(A.heap().stats().IgnoredFrees, 0u); // No crash is the test.
}

} // namespace
} // namespace diehard
