//===- tests/integration/ErrorAvoidanceTest.cpp ---------------------------===//
//
// Part of the DieHard reproduction (Berger & Zorn, PLDI 2006).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// End-to-end statistical tests: the *deployed* stack (real heap, real
/// workloads, real fault injector, real voter) avoids memory errors at the
/// rates Section 6 promises. These are the integration-level counterparts
/// of the per-module tests: each one exercises several modules together.
///
//===----------------------------------------------------------------------===//

#include "baselines/DieHardAllocator.h"
#include "core/CheckedLibc.h"
#include "core/DieHardHeap.h"
#include "core/HeapAdapter.h"
#include "faultinject/FaultInjector.h"
#include "faultinject/TraceAllocator.h"
#include "replication/Replication.h"
#include "workloads/ForkHarness.h"
#include "workloads/SyntheticWorkload.h"

#include <gtest/gtest.h>

#include <cstring>
#include <string>
#include <vector>

namespace diehard {
namespace {

TEST(ErrorAvoidanceIntegration, WorkloadSurvivesHeavyDanglingInjection) {
  // Trace, then re-run with a slice of the frees ten allocations early, on
  // the real randomized heap; the checksum must survive. The per-run
  // masking probability is governed by Theorem 2's slot-reuse term: each
  // prematurely freed slot is re-handed-out within its 10-allocation
  // dangling window with probability ~(window / free slots in its class),
  // summed over ~2300 injected events. The 1 GB reservation keeps the most
  // populated class at ~330k slots, putting the expected collisions per
  // run near 0.03 — low enough that requiring 4 of 5 seeds to mask is
  // statistically safe rather than seed-lottery (the reservation is
  // MAP_NORESERVE, so the size costs address space, not memory).
  WorkloadParams P;
  P.Name = "dangle";
  P.MemoryOps = 30000;
  P.MinSize = 8;
  P.MaxSize = 256;
  P.MaxLive = 1000;
  P.Seed = 77;
  SyntheticWorkload W(P);

  DieHardOptions O;
  O.HeapSize = size_t(1024) * 1024 * 1024;
  O.Seed = 3;
  DieHardAllocator TraceInner(O);
  TraceAllocator Tracer(TraceInner);
  uint64_t Clean = W.run(Tracer).Checksum;

  int Correct = 0;
  for (int Run = 0; Run < 5; ++Run) {
    FaultConfig Config;
    Config.DanglingProbability = 0.15;
    Config.DanglingDistance = 10;
    Config.Seed = static_cast<uint64_t>(Run) + 1;
    DieHardOptions RO = O;
    RO.Seed = static_cast<uint64_t>(Run) * 17 + 5;
    DieHardAllocator Inner(RO);
    FaultInjector Injector(Inner, Tracer.trace(), Config);
    Correct += W.run(Injector).Checksum == Clean ? 1 : 0;
  }
  EXPECT_GE(Correct, 4) << "Theorem 2 predicts near-certain masking for "
                           "small objects at distance 10";
}

TEST(ErrorAvoidanceIntegration, WorkloadSurvivesOverflowInjection) {
  WorkloadParams P;
  P.Name = "ovfl";
  P.MemoryOps = 30000;
  P.MinSize = 8;
  P.MaxSize = 512;
  P.MaxLive = 1000;
  P.Seed = 78;
  SyntheticWorkload W(P);

  DieHardOptions O;
  O.HeapSize = 256 * 1024 * 1024;
  O.Seed = 4;
  DieHardAllocator TraceInner(O);
  TraceAllocator Tracer(TraceInner);
  uint64_t Clean = W.run(Tracer).Checksum;

  int Correct = 0;
  for (int Run = 0; Run < 5; ++Run) {
    FaultConfig Config;
    Config.OverflowProbability = 0.01;
    Config.OverflowMinSize = 32;
    Config.UnderAllocateBytes = 4;
    Config.Seed = static_cast<uint64_t>(Run) + 11;
    DieHardOptions RO = O;
    RO.Seed = static_cast<uint64_t>(Run) * 23 + 7;
    DieHardAllocator Inner(RO);
    FaultInjector Injector(Inner, Tracer.trace(), Config);
    Correct += W.run(Injector).Checksum == Clean ? 1 : 0;
  }
  EXPECT_GE(Correct, 4);
}

TEST(ErrorAvoidanceIntegration, OverflowMaskingRateTracksTheorem1) {
  // Fill the 64-byte class to ~1/8, overflow one object's worth from a
  // victim, and measure the masking rate across seeds: Theorem 1 says
  // ~87.5%.
  constexpr int Trials = 200;
  int Masked = 0;
  for (int T = 0; T < Trials; ++T) {
    DieHardOptions O;
    O.HeapSize = 12 * SizeClass::MaxObjectSize * 8;
    O.Seed = static_cast<uint64_t>(T) * 131 + 1;
    DieHardHeap H(O);
    int C = SizeClass::sizeToClass(64);
    size_t Slots = H.slotsInClass(C);
    std::vector<unsigned char *> Live;
    for (size_t I = 0; I < Slots / 8; ++I) {
      auto *P = static_cast<unsigned char *>(H.allocate(64));
      ASSERT_NE(P, nullptr);
      std::memset(P, 0x33, 64);
      Live.push_back(P);
    }
    unsigned char *Victim = Live[Live.size() / 3];
    std::memset(Victim + 64, 0x99, 64); // One object's worth.
    bool Hit = false;
    for (unsigned char *P : Live) {
      if (P == Victim)
        continue;
      for (int B = 0; B < 64 && !Hit; ++B)
        Hit = P[B] != 0x33;
    }
    Masked += Hit ? 0 : 1;
  }
  double Rate = static_cast<double>(Masked) / Trials;
  EXPECT_GT(Rate, 0.80) << "Theorem 1 predicts ~87.5% at 1/8 full";
  EXPECT_LT(Rate, 0.95);
}

TEST(ErrorAvoidanceIntegration, ReplicatedWorkloadMasksInjectedOverflow) {
  // Full stack: three replicas run the same workload; one replica's heap
  // is additionally battered by an out-of-bounds write. The two healthy
  // replicas outvote it (or, almost always, the battered one still
  // produces correct output and all three agree).
  ReplicationOptions RO;
  RO.Replicas = 3;
  RO.MasterSeed = 0xFEED;
  RO.HeapSize = 64 * 1024 * 1024;
  ReplicaManager Manager(RO);
  ReplicationResult R = Manager.run(
      [](ReplicaContext &Ctx) {
        DieHardHeap Heap(Ctx.heapOptions());
        HeapAdapter Adapter(Heap, "replica");

        // Replica 0 suffers an overflow mid-run.
        if (Ctx.replicaIndex() == 0) {
          auto *P = static_cast<char *>(Heap.allocate(128));
          std::memset(P, 0x5A, 128 + 256);
        }

        WorkloadParams P;
        P.Name = "rep";
        P.MemoryOps = 20000;
        P.MinSize = 8;
        P.MaxSize = 256;
        P.MaxLive = 500;
        P.Seed = 0xCAFE;
        SyntheticWorkload W(P);
        uint64_t Sum = W.run(Adapter).Checksum;
        char Line[32];
        int N = std::snprintf(Line, sizeof(Line), "%016llx\n",
                              static_cast<unsigned long long>(Sum));
        Ctx.write(Line, static_cast<size_t>(N));
        return 0;
      },
      "");
  EXPECT_TRUE(R.Success);
  EXPECT_GE(R.Survivors, 2);
}

TEST(ErrorAvoidanceIntegration, CheckedLibcProtectsLargeObjectsToo) {
  DieHardOptions O;
  O.HeapSize = 64 * 1024 * 1024;
  O.Seed = 5;
  DieHardHeap H(O);
  CheckedLibc Checked(H);
  // A large (mmap'd, guarded) object: the checked copy must clamp at its
  // exact requested size rather than fault on the guard page.
  constexpr size_t Size = 20000;
  auto *Dst = static_cast<char *>(H.allocate(Size));
  ASSERT_NE(Dst, nullptr);
  std::string Huge(100000, 'h');
  Checked.strcpy(Dst, Huge.c_str());
  EXPECT_EQ(std::strlen(Dst), Size - 1);
  H.deallocate(Dst);
}

TEST(ErrorAvoidanceIntegration, WholeHeapFillSupportsOutOfBoundsReads) {
  // With Figure 2's whole-heap random fill, even reads *past* an object
  // (not just of uninitialized objects) diverge across seeds.
  DieHardOptions A, B;
  A.HeapSize = B.HeapSize = 12 * SizeClass::MaxObjectSize * 4;
  A.RandomFillHeapOnInit = B.RandomFillHeapOnInit = true;
  A.Seed = 100;
  B.Seed = 200;
  DieHardHeap HA(A), HB(B);
  auto *PA = static_cast<uint32_t *>(HA.allocate(64));
  auto *PB = static_cast<uint32_t *>(HB.allocate(64));
  ASSERT_NE(PA, nullptr);
  ASSERT_NE(PB, nullptr);
  // Read beyond the object's end (stays inside the heap partition).
  bool Different = false;
  for (int I = 16; I < 32; ++I)
    Different |= PA[I] != PB[I];
  EXPECT_TRUE(Different)
      << "out-of-bounds reads must return replica-divergent data";
}

} // namespace
} // namespace diehard
