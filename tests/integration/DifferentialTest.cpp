//===- tests/integration/DifferentialTest.cpp -----------------------------===//
//
// Part of the DieHard reproduction (Berger & Zorn, PLDI 2006).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Differential property testing: every allocator in the repository is
/// driven through long random allocate/write/read/free schedules against a
/// reference model (a map of live objects with shadow copies of their
/// contents). Any lost write, overlapping placement, premature reuse, or
/// bookkeeping drift shows up as a divergence from the model.
///
//===----------------------------------------------------------------------===//

#include "baselines/AdaptiveAllocator.h"
#include "baselines/DieHardAllocator.h"
#include "baselines/GcAllocator.h"
#include "baselines/LeaAllocator.h"
#include "baselines/SelectiveAllocator.h"
#include "support/Rng.h"

#include <gtest/gtest.h>

#include <cstring>
#include <functional>
#include <map>
#include <memory>
#include <vector>

namespace diehard {
namespace {

/// Shadow model: live object -> exact expected contents.
class ShadowModel {
public:
  void onAllocate(void *Ptr, size_t Size, Rng &Rand) {
    ASSERT_NE(Ptr, nullptr);
    std::vector<uint8_t> Bytes(Size);
    for (auto &B : Bytes)
      B = static_cast<uint8_t>(Rand.next());
    std::memcpy(Ptr, Bytes.data(), Size);
    auto [It, Inserted] = Objects.emplace(
        Ptr, std::move(Bytes));
    ASSERT_TRUE(Inserted) << "allocator returned a live pointer twice";
    // No overlap with any other live object.
    auto Overlaps = [&](const std::pair<void *const, std::vector<uint8_t>>
                            &Other) {
      auto *A = static_cast<const char *>(Ptr);
      auto *B = static_cast<const char *>(Other.first);
      return A < B + Other.second.size() && B < A + Size;
    };
    auto Next = std::next(It);
    if (It != Objects.begin()) {
      ASSERT_FALSE(Overlaps(*std::prev(It))) << "overlap with predecessor";
    }
    if (Next != Objects.end()) {
      ASSERT_FALSE(Overlaps(*Next)) << "overlap with successor";
    }
  }

  void mutate(Rng &Rand) {
    if (Objects.empty())
      return;
    auto It = Objects.begin();
    std::advance(It, Rand.nextBounded(
                         static_cast<uint32_t>(Objects.size())));
    size_t Offset = Rand.nextBounded(
        static_cast<uint32_t>(It->second.size()));
    uint8_t Value = static_cast<uint8_t>(Rand.next());
    It->second[Offset] = Value;
    static_cast<uint8_t *>(It->first)[Offset] = Value;
  }

  void verifyOne(Rng &Rand) const {
    if (Objects.empty())
      return;
    auto It = Objects.begin();
    std::advance(It, Rand.nextBounded(
                         static_cast<uint32_t>(Objects.size())));
    const auto *Actual = static_cast<const uint8_t *>(It->first);
    for (size_t B = 0; B < It->second.size(); ++B)
      ASSERT_EQ(Actual[B], It->second[B])
          << "lost write at byte " << B << " of a " << It->second.size()
          << "-byte object";
  }

  void *pickVictim(Rng &Rand) {
    if (Objects.empty())
      return nullptr;
    auto It = Objects.begin();
    std::advance(It, Rand.nextBounded(
                         static_cast<uint32_t>(Objects.size())));
    return It->first;
  }

  void onFree(void *Ptr) {
    // Final content check before release.
    auto It = Objects.find(Ptr);
    ASSERT_NE(It, Objects.end());
    const auto *Actual = static_cast<const uint8_t *>(Ptr);
    for (size_t B = 0; B < It->second.size(); ++B)
      ASSERT_EQ(Actual[B], It->second[B]) << "corrupted before free";
    Objects.erase(It);
  }

  size_t liveCount() const { return Objects.size(); }

  /// Any live object, for draining the model at end of schedule.
  void *anyLive() const {
    return Objects.empty() ? nullptr : Objects.begin()->first;
  }

private:
  std::map<void *, std::vector<uint8_t>> Objects;
};

void runDifferential(Allocator &Target, uint64_t Seed, int Steps,
                     size_t MaxSize) {
  Rng Rand(Seed);
  ShadowModel Model;
  // Collectors must see the shadow model's pointers — register a mirror
  // array that we keep in sync (cheap: re-registered root each epoch is
  // not needed since GC reads it during collect only).
  std::vector<void *> RootMirror;
  RootMirror.reserve(4096);
  Target.registerRootRange(RootMirror.data(), 4096 * sizeof(void *));
  std::map<void *, size_t> RootIndex;

  auto addRoot = [&](void *P) {
    RootIndex[P] = RootMirror.size();
    RootMirror.push_back(P);
  };
  auto dropRoot = [&](void *P) {
    size_t I = RootIndex[P];
    RootIndex.erase(P);
    if (I + 1 != RootMirror.size()) {
      RootMirror[I] = RootMirror.back();
      RootIndex[RootMirror[I]] = I;
    }
    RootMirror.pop_back();
  };

  for (int Step = 0; Step < Steps; ++Step) {
    uint32_t Op = Rand.nextBounded(100);
    if (Op < 40 || Model.liveCount() == 0) {
      if (Model.liveCount() >= 4000)
        continue;
      size_t Size = 1 + Rand.nextBounded(static_cast<uint32_t>(MaxSize));
      void *P = Target.allocate(Size);
      if (P == nullptr)
        continue;
      Model.onAllocate(P, Size, Rand);
      addRoot(P);
      if (::testing::Test::HasFatalFailure())
        return;
    } else if (Op < 60) {
      Model.mutate(Rand);
    } else if (Op < 85) {
      Model.verifyOne(Rand);
      if (::testing::Test::HasFatalFailure())
        return;
    } else {
      void *Victim = Model.pickVictim(Rand);
      if (Victim == nullptr)
        continue;
      Model.onFree(Victim);
      if (::testing::Test::HasFatalFailure())
        return;
      dropRoot(Victim);
      Target.deallocate(Victim);
    }
  }
  // Drain every object still live so allocators with no reclaiming
  // destructor (notably the system malloc) end the schedule leak-free.
  while (void *P = Model.anyLive()) {
    Model.onFree(P);
    if (::testing::Test::HasFatalFailure())
      return;
    dropRoot(P);
    Target.deallocate(P);
  }
  Target.unregisterRootRange(RootMirror.data());
}

struct DifferentialCase {
  const char *Name;
  std::function<std::unique_ptr<Allocator>()> Make;
  size_t MaxSize;
};

class AllocatorDifferential
    : public ::testing::TestWithParam<DifferentialCase> {};

TEST_P(AllocatorDifferential, LongRandomScheduleMatchesModel) {
  const DifferentialCase &Case = GetParam();
  for (uint64_t Seed : {1u, 2u, 3u}) {
    auto Target = Case.Make();
    runDifferential(*Target, Seed, 30000, Case.MaxSize);
    if (::testing::Test::HasFatalFailure())
      return;
  }
}

DieHardOptions diffHeapOptions() {
  DieHardOptions O;
  O.HeapSize = 192 * 1024 * 1024;
  O.Seed = 0xD1FF;
  return O;
}

INSTANTIATE_TEST_SUITE_P(
    AllAllocators, AllocatorDifferential,
    ::testing::Values(
        DifferentialCase{"diehard",
                         [] {
                           return std::make_unique<DieHardAllocator>(
                               diffHeapOptions());
                         },
                         8192},
        DifferentialCase{"diehard_random_fill",
                         [] {
                           DieHardOptions O = diffHeapOptions();
                           O.RandomFillObjects = true;
                           O.RandomFillOnFree = true;
                           return std::make_unique<DieHardAllocator>(O);
                         },
                         4096},
        DifferentialCase{"diehard_large_objects",
                         [] {
                           return std::make_unique<DieHardAllocator>(
                               diffHeapOptions());
                         },
                         48 * 1024},
        DifferentialCase{"adaptive",
                         [] {
                           AdaptiveOptions O;
                           O.Seed = 0xD1FF;
                           return std::make_unique<AdaptiveAllocator>(O);
                         },
                         8192},
        DifferentialCase{"lea",
                         [] {
                           return std::make_unique<LeaAllocator>(
                               size_t(256) << 20);
                         },
                         8192},
        DifferentialCase{"gc",
                         [] {
                           return std::make_unique<GcAllocator>(
                               size_t(512) << 20, 32 << 20);
                         },
                         4096},
        DifferentialCase{"selective",
                         [] {
                           return std::make_unique<SelectiveAllocator>(
                               0x3F, diffHeapOptions());
                         },
                         8192},
        DifferentialCase{"system",
                         [] { return std::make_unique<SystemAllocator>(); },
                         8192}),
    [](const auto &Info) { return std::string(Info.param.Name); });

} // namespace
} // namespace diehard
