//===- tests/faultinject/FaultInjectTest.cpp ------------------------------===//
//
// Part of the DieHard reproduction (Berger & Zorn, PLDI 2006).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Tests for the trace-then-inject fault methodology.
///
//===----------------------------------------------------------------------===//

#include "faultinject/FaultInjector.h"

#include "baselines/DieHardAllocator.h"
#include "faultinject/TraceAllocator.h"
#include "workloads/SyntheticWorkload.h"

#include <gtest/gtest.h>

namespace diehard {
namespace {

WorkloadParams smallWorkload() {
  WorkloadParams P;
  P.Name = "unit";
  P.MemoryOps = 20000;
  P.MinSize = 8;
  P.MaxSize = 256;
  P.MaxLive = 500;
  P.Seed = 99;
  return P;
}

DieHardOptions heapOptions() {
  DieHardOptions O;
  O.HeapSize = 48 * 1024 * 1024;
  O.Seed = 5;
  return O;
}

TEST(TraceAllocatorTest, RecordsLifetimesInAllocationTime) {
  DieHardAllocator Inner(heapOptions());
  TraceAllocator Tracer(Inner);
  void *A = Tracer.allocate(16); // Alloc time 0.
  void *B = Tracer.allocate(32); // Alloc time 1.
  Tracer.deallocate(A);          // Freed at allocation count 2.
  void *C = Tracer.allocate(64); // Alloc time 2.
  Tracer.deallocate(C);          // Freed at allocation count 3.
  Tracer.deallocate(B);

  const AllocationTrace &T = Tracer.trace();
  ASSERT_EQ(T.size(), 3u);
  EXPECT_EQ(T[0].AllocTime, 0u);
  EXPECT_EQ(T[0].FreeTime, 2);
  EXPECT_EQ(T[0].Size, 16u);
  EXPECT_EQ(T[1].FreeTime, 3);
  EXPECT_EQ(T[2].AllocTime, 2u);
  EXPECT_EQ(T[2].FreeTime, 3);
}

TEST(TraceAllocatorTest, NeverFreedHasMinusOne) {
  DieHardAllocator Inner(heapOptions());
  TraceAllocator Tracer(Inner);
  void *A = Tracer.allocate(16);
  (void)A;
  EXPECT_EQ(Tracer.trace()[0].FreeTime, -1);
}

TEST(TraceAllocatorTest, WorkloadTraceIsConsistent) {
  DieHardAllocator Inner(heapOptions());
  TraceAllocator Tracer(Inner);
  SyntheticWorkload W(smallWorkload());
  WorkloadResult R = W.run(Tracer);
  const AllocationTrace &T = Tracer.trace();
  EXPECT_EQ(T.size(), R.Allocations);
  // The workload drains everything, so every record must have a free time
  // strictly after its allocation time.
  for (const AllocationRecord &Rec : T) {
    ASSERT_GE(Rec.FreeTime, 0);
    EXPECT_GT(static_cast<uint64_t>(Rec.FreeTime), Rec.AllocTime);
  }
}

TEST(FaultInjectorTest, ZeroRatesInjectNothing) {
  DieHardAllocator Inner(heapOptions());
  TraceAllocator Tracer(Inner);
  SyntheticWorkload W(smallWorkload());
  W.run(Tracer);

  DieHardAllocator Inner2(heapOptions());
  FaultConfig Config; // All rates zero.
  FaultInjector Injector(Inner2, Tracer.trace(), Config);
  WorkloadResult Clean = W.run(Injector);
  EXPECT_EQ(Injector.stats().DanglingInjected, 0u);
  EXPECT_EQ(Injector.stats().OverflowsInjected, 0u);
  // A fault-free injected run is just the workload: checksum must match a
  // direct run.
  DieHardAllocator Inner3(heapOptions());
  WorkloadResult Direct = W.run(Inner3);
  EXPECT_EQ(Clean.Checksum, Direct.Checksum);
}

TEST(FaultInjectorTest, DanglingRateIsRespected) {
  DieHardAllocator Inner(heapOptions());
  TraceAllocator Tracer(Inner);
  SyntheticWorkload W(smallWorkload());
  W.run(Tracer);

  DieHardAllocator Inner2(heapOptions());
  FaultConfig Config;
  Config.DanglingProbability = 0.5;
  Config.DanglingDistance = 10;
  FaultInjector Injector(Inner2, Tracer.trace(), Config);
  W.run(Injector);

  // Roughly half of the traced objects should have been freed early.
  auto Injected = static_cast<double>(Injector.stats().DanglingInjected);
  auto Total = static_cast<double>(Tracer.trace().size());
  EXPECT_GT(Injected / Total, 0.35);
  EXPECT_LT(Injected / Total, 0.6);
  EXPECT_EQ(Injector.stats().DanglingInjected,
            Injector.stats().IgnoredRealFrees)
      << "every early free swallows exactly one real free";
}

TEST(FaultInjectorTest, OverflowRateIsRespected) {
  DieHardAllocator Inner(heapOptions());
  TraceAllocator Tracer(Inner);
  SyntheticWorkload W(smallWorkload());
  W.run(Tracer);

  DieHardAllocator Inner2(heapOptions());
  FaultConfig Config;
  Config.OverflowProbability = 0.01;
  Config.OverflowMinSize = 32;
  FaultInjector Injector(Inner2, Tracer.trace(), Config);
  W.run(Injector);

  // ~1% of the eligible (>= 32 byte) allocations; the workload draws sizes
  // uniformly-ish in [8,256], so the eligible fraction is large.
  auto Injected = static_cast<double>(Injector.stats().OverflowsInjected);
  auto Total = static_cast<double>(Tracer.trace().size());
  EXPECT_GT(Injected / Total, 0.002);
  EXPECT_LT(Injected / Total, 0.02);
}

TEST(FaultInjectorTest, UnderAllocationShrinksObject) {
  // Direct check of the mechanism: the injector's object is smaller than
  // requested, so the application's write overflows.
  DieHardOptions O = heapOptions();
  DieHardAllocator Inner(O);
  AllocationTrace Empty;
  FaultConfig Config;
  Config.OverflowProbability = 1.0; // Always inject.
  Config.OverflowMinSize = 32;
  Config.UnderAllocateBytes = 4;
  FaultInjector Injector(Inner, Empty, Config);
  void *P = Injector.allocate(128);
  ASSERT_NE(P, nullptr);
  EXPECT_EQ(Injector.stats().OverflowsInjected, 1u);
  // 124 bytes rounds to the 128 class anyway — use a class boundary where
  // the under-allocation changes the class: 130 -> 126 crosses 128.
  void *Q = Injector.allocate(130);
  ASSERT_NE(Q, nullptr);
  EXPECT_EQ(Inner.heap().getObjectSize(Q), 128u)
      << "under-allocated request must land in the smaller class";
}

TEST(FaultInjectorTest, SmallRequestsAreNeverUnderAllocated) {
  DieHardAllocator Inner(heapOptions());
  AllocationTrace Empty;
  FaultConfig Config;
  Config.OverflowProbability = 1.0;
  Config.OverflowMinSize = 32;
  FaultInjector Injector(Inner, Empty, Config);
  for (int I = 0; I < 100; ++I)
    Injector.allocate(16);
  EXPECT_EQ(Injector.stats().OverflowsInjected, 0u)
      << "requests below OverflowMinSize are exempt";
}

TEST(FaultInjectorTest, PrematureFreeHappensBeforeRealFree) {
  DieHardAllocator Inner(heapOptions());
  // Hand-built trace: object 0 allocated at t=0, freed at t=20.
  AllocationTrace Trace;
  Trace.push_back(AllocationRecord{0, 20, 64});
  for (uint64_t T = 1; T < 32; ++T)
    Trace.push_back(AllocationRecord{T, -1, 64});

  FaultConfig Config;
  Config.DanglingProbability = 1.0;
  Config.DanglingDistance = 10;
  FaultInjector Injector(Inner, Trace, Config);

  void *Victim = Injector.allocate(64);
  ASSERT_NE(Victim, nullptr);
  EXPECT_EQ(Inner.heap().getObjectSize(Victim), 64u);
  // The due time is allocation count 20 - 10 = 10: after 8 more
  // allocations the count is 9 and the victim is still live.
  for (int T = 1; T < 9; ++T)
    Injector.allocate(64);
  EXPECT_EQ(Inner.heap().getObjectSize(Victim), 64u);
  // The allocation that brings the count to 10 triggers the early free.
  Injector.allocate(64);
  EXPECT_EQ(Inner.heap().getObjectSize(Victim), 0u)
      << "victim must be freed 10 allocations early";
  EXPECT_EQ(Injector.stats().DanglingInjected, 1u);
  // The application's own free is swallowed.
  Injector.deallocate(Victim);
  EXPECT_EQ(Injector.stats().IgnoredRealFrees, 1u);
  EXPECT_EQ(Inner.heap().stats().IgnoredFrees, 0u)
      << "the swallowed free never reaches the heap";
}

} // namespace
} // namespace diehard
