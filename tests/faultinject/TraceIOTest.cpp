//===- tests/faultinject/TraceIOTest.cpp ----------------------------------===//
//
// Part of the DieHard reproduction (Berger & Zorn, PLDI 2006).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Tests for allocation-log round-tripping.
///
//===----------------------------------------------------------------------===//

#include "faultinject/TraceIO.h"

#include "baselines/DieHardAllocator.h"
#include "workloads/SyntheticWorkload.h"

#include <gtest/gtest.h>

#include <cstdio>
#include <string>

#include <unistd.h>

namespace diehard {
namespace {

std::string tempTracePath() {
  char Template[] = "/tmp/diehard-trace-XXXXXX";
  int Fd = ::mkstemp(Template);
  if (Fd >= 0)
    ::close(Fd);
  return Template;
}

TEST(TraceIOTest, RoundTripsEmptyTrace) {
  std::string Path = tempTracePath();
  AllocationTrace Empty;
  ASSERT_TRUE(writeTrace(Empty, Path));
  AllocationTrace Loaded;
  ASSERT_TRUE(readTrace(Loaded, Path));
  EXPECT_TRUE(Loaded.empty());
  std::remove(Path.c_str());
}

TEST(TraceIOTest, RoundTripsRecordsExactly) {
  std::string Path = tempTracePath();
  AllocationTrace Trace;
  Trace.push_back(AllocationRecord{0, 5, 16});
  Trace.push_back(AllocationRecord{1, -1, 1024}); // Never freed.
  Trace.push_back(AllocationRecord{2, 3, 8});
  ASSERT_TRUE(writeTrace(Trace, Path));

  AllocationTrace Loaded;
  ASSERT_TRUE(readTrace(Loaded, Path));
  ASSERT_EQ(Loaded.size(), 3u);
  for (size_t I = 0; I < 3; ++I) {
    EXPECT_EQ(Loaded[I].AllocTime, Trace[I].AllocTime) << I;
    EXPECT_EQ(Loaded[I].FreeTime, Trace[I].FreeTime) << I;
    EXPECT_EQ(Loaded[I].Size, Trace[I].Size) << I;
  }
  std::remove(Path.c_str());
}

TEST(TraceIOTest, RoundTripsRealWorkloadTrace) {
  DieHardOptions O;
  O.HeapSize = 64 * 1024 * 1024;
  O.Seed = 9;
  DieHardAllocator Inner(O);
  TraceAllocator Tracer(Inner);
  WorkloadParams P;
  P.Name = "io";
  P.MemoryOps = 10000;
  P.MaxLive = 300;
  P.Seed = 4;
  SyntheticWorkload W(P);
  W.run(Tracer);

  std::string Path = tempTracePath();
  ASSERT_TRUE(writeTrace(Tracer.trace(), Path));
  AllocationTrace Loaded;
  ASSERT_TRUE(readTrace(Loaded, Path));
  ASSERT_EQ(Loaded.size(), Tracer.trace().size());
  for (size_t I = 0; I < Loaded.size(); I += 17) {
    EXPECT_EQ(Loaded[I].FreeTime, Tracer.trace()[I].FreeTime);
    EXPECT_EQ(Loaded[I].Size, Tracer.trace()[I].Size);
  }
  std::remove(Path.c_str());
}

TEST(TraceIOTest, MissingFileFails) {
  AllocationTrace Loaded;
  EXPECT_FALSE(readTrace(Loaded, "/nonexistent/dir/trace.txt"));
  EXPECT_TRUE(Loaded.empty());
}

TEST(TraceIOTest, GarbageFileFails) {
  std::string Path = tempTracePath();
  FILE *F = std::fopen(Path.c_str(), "w");
  ASSERT_NE(F, nullptr);
  std::fputs("this is not a trace\n", F);
  std::fclose(F);
  AllocationTrace Loaded;
  EXPECT_FALSE(readTrace(Loaded, Path));
  EXPECT_TRUE(Loaded.empty());
  std::remove(Path.c_str());
}

TEST(TraceIOTest, TruncatedFileFails) {
  std::string Path = tempTracePath();
  FILE *F = std::fopen(Path.c_str(), "w");
  ASSERT_NE(F, nullptr);
  std::fputs("diehard-trace v1 5\n0 1 16\n", F); // Claims 5, has 1.
  std::fclose(F);
  AllocationTrace Loaded;
  EXPECT_FALSE(readTrace(Loaded, Path));
  std::remove(Path.c_str());
}

TEST(TraceIOTest, UnwritablePathFails) {
  AllocationTrace Trace;
  EXPECT_FALSE(writeTrace(Trace, "/nonexistent/dir/trace.txt"));
}

} // namespace
} // namespace diehard
