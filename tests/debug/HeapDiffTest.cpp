//===- tests/debug/HeapDiffTest.cpp ---------------------------------------===//
//
// Part of the DieHard reproduction (Berger & Zorn, PLDI 2006).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Tests for the heap-differencing debugger.
///
//===----------------------------------------------------------------------===//

#include "debug/HeapDiff.h"

#include "core/DieHardHeap.h"

#include <gtest/gtest.h>

#include <cstring>
#include <vector>

namespace diehard {
namespace {

DieHardOptions debugOptions(uint64_t Seed = 0xD1FF) {
  DieHardOptions O;
  O.HeapSize = 24 * 1024 * 1024;
  O.Seed = Seed;
  return O;
}

/// Runs the same deterministic allocation script on \p Heap; optionally
/// injects an overflow from object \p OverflowFrom of \p OverflowBytes.
std::vector<char *> runScript(DieHardHeap &Heap, int OverflowFrom = -1,
                              size_t OverflowBytes = 0) {
  std::vector<char *> Objects;
  for (int I = 0; I < 50; ++I) {
    auto *P = static_cast<char *>(Heap.allocate(64));
    std::memset(P, I, 64);
    Objects.push_back(P);
  }
  if (OverflowFrom >= 0)
    std::memset(Objects[static_cast<size_t>(OverflowFrom)], 0x7E,
                64 + OverflowBytes);
  return Objects;
}

TEST(HeapDiffTest, IdenticalRunsProduceEmptyDiff) {
  DieHardHeap A(debugOptions()), B(debugOptions());
  runScript(A);
  runScript(B);
  auto Diff = diffHeapSnapshots(HeapSnapshot::capture(A),
                                HeapSnapshot::capture(B));
  EXPECT_TRUE(Diff.empty());
  EXPECT_EQ(formatHeapDiff(Diff), "heaps identical\n");
}

TEST(HeapDiffTest, SameSeedGivesComparableSnapshots) {
  DieHardHeap A(debugOptions()), B(debugOptions());
  runScript(A);
  runScript(B);
  HeapSnapshot SA = HeapSnapshot::capture(A);
  EXPECT_EQ(SA.heapSeed(), B.seed());
  EXPECT_EQ(SA.objectCount(), 50u);
}

TEST(HeapDiffTest, OverflowVictimsArePinpointed) {
  DieHardHeap Reference(debugOptions()), Suspect(debugOptions());
  runScript(Reference);
  // The suspect run overflows 3 objects' worth of bytes from object 10.
  runScript(Suspect, /*OverflowFrom=*/10, /*OverflowBytes=*/3 * 64);
  auto Diff = diffHeapSnapshots(HeapSnapshot::capture(Reference),
                                HeapSnapshot::capture(Suspect));
  // The overflowing object itself changed (memset with a new value), and
  // every live slot in the 192 trailing bytes changed too.
  ASSERT_FALSE(Diff.empty());
  for (const HeapDiffEntry &E : Diff)
    EXPECT_EQ(E.Kind, HeapDiffKind::ContentChanged);
  // At least the source object diverged; victims depend on layout.
  EXPECT_GE(Diff.size(), 1u);
  EXPECT_LE(Diff.size(), 4u) << "a 3-object overflow touches at most the "
                                "source plus 3 slots";
}

TEST(HeapDiffTest, ByteRangeNarrowsTheWrite) {
  DieHardHeap Reference(debugOptions()), Suspect(debugOptions());
  auto RefObjs = runScript(Reference);
  auto SusObjs = runScript(Suspect);
  (void)RefObjs;
  // Corrupt exactly bytes [8, 11] of object 7 in the suspect run.
  std::memset(SusObjs[7] + 8, 0xFF, 4);
  auto Diff = diffHeapSnapshots(HeapSnapshot::capture(Reference),
                                HeapSnapshot::capture(Suspect));
  ASSERT_EQ(Diff.size(), 1u);
  EXPECT_EQ(Diff[0].Kind, HeapDiffKind::ContentChanged);
  EXPECT_EQ(Diff[0].FirstByte, 8u);
  EXPECT_EQ(Diff[0].LastByte, 11u);
}

TEST(HeapDiffTest, LivenessDivergenceIsReported) {
  DieHardHeap Reference(debugOptions()), Suspect(debugOptions());
  auto RefObjs = runScript(Reference);
  auto SusObjs = runScript(Suspect);
  (void)RefObjs;
  // The suspect run freed one object the reference still holds (e.g. a
  // double-free bug's first symptom).
  Suspect.deallocate(SusObjs[3]);
  auto Diff = diffHeapSnapshots(HeapSnapshot::capture(Reference),
                                HeapSnapshot::capture(Suspect));
  ASSERT_EQ(Diff.size(), 1u);
  EXPECT_EQ(Diff[0].Kind, HeapDiffKind::OnlyInReference);
}

TEST(HeapDiffTest, ExtraAllocationIsReported) {
  DieHardHeap Reference(debugOptions()), Suspect(debugOptions());
  runScript(Reference);
  runScript(Suspect);
  Suspect.allocate(64);
  auto Diff = diffHeapSnapshots(HeapSnapshot::capture(Reference),
                                HeapSnapshot::capture(Suspect));
  ASSERT_EQ(Diff.size(), 1u);
  EXPECT_EQ(Diff[0].Kind, HeapDiffKind::OnlyInSuspect);
}

TEST(HeapDiffTest, LiveWalkIsClassMajorSlotAscending) {
  // The snapshot keys on (class, slot), so the heap's live-object walk must
  // stay deterministic across the partition decomposition: class-major,
  // slot ascending, bit-identical between two walks of the same heap.
  DieHardHeap Heap(debugOptions(0xABCD));
  std::vector<void *> Held;
  for (int I = 0; I < 200; ++I)
    Held.push_back(Heap.allocate(1 + (I * 97) % 8000));

  std::vector<std::pair<int, size_t>> FirstWalk;
  Heap.forEachLiveObject([&](int Class, size_t Slot, const void *, size_t) {
    if (!FirstWalk.empty()) {
      EXPECT_LT(FirstWalk.back(), std::make_pair(Class, Slot))
          << "walk must be strictly (class, slot)-ascending";
    }
    FirstWalk.emplace_back(Class, Slot);
  });
  EXPECT_EQ(FirstWalk.size(), 200u);

  std::vector<std::pair<int, size_t>> SecondWalk;
  Heap.forEachLiveObject([&](int Class, size_t Slot, const void *, size_t) {
    SecondWalk.emplace_back(Class, Slot);
  });
  EXPECT_EQ(FirstWalk, SecondWalk) << "iteration order must be stable";

  for (void *P : Held)
    Heap.deallocate(P);
}

TEST(HeapDiffTest, SnapshotCountsObjectsPerPartition) {
  DieHardHeap Heap(debugOptions(0xBEEF));
  // 30 objects in the 64-byte class, 12 in the 1 KB class.
  std::vector<void *> Held;
  for (int I = 0; I < 30; ++I)
    Held.push_back(Heap.allocate(64));
  for (int I = 0; I < 12; ++I)
    Held.push_back(Heap.allocate(1024));

  HeapSnapshot Snap = HeapSnapshot::capture(Heap);
  EXPECT_EQ(Snap.objectCount(), 42u);
  size_t Sum = 0;
  for (int C = 0; C < SizeClass::NumClasses; ++C) {
    EXPECT_EQ(Snap.objectsInClass(C), Heap.liveInClass(C)) << "class " << C;
    Sum += Snap.objectsInClass(C);
  }
  EXPECT_EQ(Sum, Snap.objectCount());
  for (void *P : Held)
    Heap.deallocate(P);
}

TEST(HeapDiffTest, FormatterMentionsEveryEntry) {
  DieHardHeap Reference(debugOptions()), Suspect(debugOptions());
  auto RefObjs = runScript(Reference);
  auto SusObjs = runScript(Suspect);
  (void)RefObjs;
  std::memset(SusObjs[2], 0xEE, 16);
  Suspect.deallocate(SusObjs[9]);
  auto Diff = diffHeapSnapshots(HeapSnapshot::capture(Reference),
                                HeapSnapshot::capture(Suspect));
  std::string Report = formatHeapDiff(Diff);
  EXPECT_NE(Report.find("overwritten"), std::string::npos);
  EXPECT_NE(Report.find("live only in reference"), std::string::npos);
}

} // namespace
} // namespace diehard
