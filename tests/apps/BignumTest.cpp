//===- tests/apps/BignumTest.cpp ------------------------------------------===//
//
// Part of the DieHard reproduction (Berger & Zorn, PLDI 2006).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Tests for the allocator-backed bignum arithmetic.
///
//===----------------------------------------------------------------------===//

#include "apps/Bignum.h"

#include "baselines/DieHardAllocator.h"
#include "support/Rng.h"

#include <gtest/gtest.h>

namespace diehard {
namespace {

class BignumTest : public ::testing::Test {
protected:
  BignumTest() : Heap(makeOptions()) {}

  static DieHardOptions makeOptions() {
    DieHardOptions O;
    O.HeapSize = 48 * 1024 * 1024;
    O.Seed = 0xB16;
    return O;
  }

  DieHardAllocator Heap;
};

TEST_F(BignumTest, ZeroAndSmallValues) {
  Bignum Zero(Heap);
  EXPECT_TRUE(Zero.isZero());
  EXPECT_EQ(Zero.toDecimal(), "0");
  EXPECT_EQ(Zero.low64(), 0u);

  Bignum Small(Heap, 12345);
  EXPECT_FALSE(Small.isZero());
  EXPECT_EQ(Small.toDecimal(), "12345");
  EXPECT_EQ(Small.low64(), 12345u);
}

TEST_F(BignumTest, Full64BitValues) {
  Bignum Big(Heap, 0xFFFFFFFFFFFFFFFFULL);
  EXPECT_EQ(Big.toDecimal(), "18446744073709551615");
  EXPECT_EQ(Big.low64(), 0xFFFFFFFFFFFFFFFFULL);
  EXPECT_EQ(Big.digitCount(), 2u);
}

TEST_F(BignumTest, AdditionMatchesUint64) {
  Rng Rand(1);
  for (int I = 0; I < 500; ++I) {
    uint64_t A = Rand.next64() >> 2, B = Rand.next64() >> 2;
    Bignum X(Heap, A);
    Bignum Y(Heap, B);
    X.add(Y);
    EXPECT_EQ(X.low64(), A + B);
  }
}

TEST_F(BignumTest, AdditionCarriesBeyond64Bits) {
  Bignum X(Heap, 0xFFFFFFFFFFFFFFFFULL);
  Bignum One(Heap, 1);
  X.add(One);
  EXPECT_EQ(X.toDecimal(), "18446744073709551616");
  EXPECT_EQ(X.digitCount(), 3u);
}

TEST_F(BignumTest, SubtractionMatchesUint64) {
  Rng Rand(2);
  for (int I = 0; I < 500; ++I) {
    uint64_t A = Rand.next64(), B = Rand.next64();
    if (A < B)
      std::swap(A, B);
    Bignum X(Heap, A);
    Bignum Y(Heap, B);
    X.subtract(Y);
    EXPECT_EQ(X.low64(), A - B);
  }
}

TEST_F(BignumTest, SubtractToZero) {
  Bignum X(Heap, 777);
  Bignum Y(Heap, 777);
  X.subtract(Y);
  EXPECT_TRUE(X.isZero());
}

TEST_F(BignumTest, MultiplySmallMatchesUint64) {
  Rng Rand(3);
  for (int I = 0; I < 500; ++I) {
    uint64_t A = Rand.next();
    uint32_t B = Rand.next();
    Bignum X(Heap, A);
    X.multiplySmall(B);
    EXPECT_EQ(X.low64(), A * B);
  }
}

TEST_F(BignumTest, MultiplyByZeroGivesZero) {
  Bignum X(Heap, 987654321);
  X.multiplySmall(0);
  EXPECT_TRUE(X.isZero());
}

TEST_F(BignumTest, DivideSmallMatchesUint64) {
  Rng Rand(4);
  for (int I = 0; I < 500; ++I) {
    uint64_t A = Rand.next64();
    uint32_t B = 1 + Rand.next();
    if (B == 0)
      B = 7;
    Bignum X(Heap, A);
    uint32_t Remainder = X.divideSmall(B);
    EXPECT_EQ(X.low64(), A / B);
    EXPECT_EQ(Remainder, A % B);
  }
}

TEST_F(BignumTest, GrowShrinkRoundTrip) {
  // (x * k + r) then divide by k recovers x and r across many digits.
  Bignum X(Heap, 1);
  for (uint32_t K = 2; K < 50; ++K)
    X.multiplySmall(K); // 49! ≈ 2^204: many digits.
  Bignum Copy(X);
  Copy.multiplySmall(97);
  Bignum R(Heap, 13);
  Copy.add(R);
  uint32_t Rem = Copy.divideSmall(97);
  EXPECT_EQ(Rem, 13u);
  EXPECT_EQ(Copy.compare(X), 0);
}

TEST_F(BignumTest, CompareOrdersCorrectly) {
  Bignum A(Heap, 5), B(Heap, 9);
  EXPECT_LT(A.compare(B), 0);
  EXPECT_GT(B.compare(A), 0);
  EXPECT_EQ(A.compare(A), 0);
  Bignum Huge(Heap, 1);
  Huge.multiplySmall(0xFFFFFFFF);
  Huge.multiplySmall(0xFFFFFFFF);
  EXPECT_GT(Huge.compare(B), 0);
}

TEST_F(BignumTest, FactorialKnownValue) {
  Bignum F(Heap, 1);
  for (uint32_t K = 2; K <= 20; ++K)
    F.multiplySmall(K);
  EXPECT_EQ(F.toDecimal(), "2432902008176640000"); // 20!
  for (uint32_t K = 21; K <= 25; ++K)
    F.multiplySmall(K);
  EXPECT_EQ(F.toDecimal(), "15511210043330985984000000"); // 25!
}

TEST_F(BignumTest, CopyAndMoveSemantics) {
  Bignum A(Heap, 424242);
  Bignum B(A); // Copy.
  EXPECT_EQ(A.compare(B), 0);
  Bignum C(std::move(A));
  EXPECT_EQ(C.toDecimal(), "424242");
  B = C; // Copy assign.
  EXPECT_EQ(B.compare(C), 0);
  Bignum D(Heap);
  D = std::move(C);
  EXPECT_EQ(D.toDecimal(), "424242");
}

TEST_F(BignumTest, NoLeaksAcrossHeavyChurn) {
  {
    Bignum F(Heap, 1);
    for (uint32_t K = 2; K <= 300; ++K) {
      F.multiplySmall(K);
      Bignum Copy(F);
      Copy.divideSmall(3);
    }
  }
  EXPECT_EQ(Heap.heap().bytesLive(), 0u)
      << "all digit arrays must be returned";
}

} // namespace
} // namespace diehard
