//===- tests/apps/MiniEspressoTest.cpp ------------------------------------===//
//
// Part of the DieHard reproduction (Berger & Zorn, PLDI 2006).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Tests for the espresso-like logic minimizer.
///
//===----------------------------------------------------------------------===//

#include "apps/MiniEspresso.h"

#include "baselines/DieHardAllocator.h"
#include "baselines/LeaAllocator.h"
#include "support/Rng.h"

#include <gtest/gtest.h>

namespace diehard {
namespace {

DieHardOptions espressoHeap(uint64_t Seed = 0xE59) {
  DieHardOptions O;
  O.HeapSize = 48 * 1024 * 1024;
  O.Seed = Seed;
  return O;
}

TEST(MiniEspressoTest, SingleVariableFullCoverCollapses) {
  // ON-set {0, 1} over one variable is the constant-true function: the
  // two minterm cubes must merge into one don't-care cube.
  DieHardAllocator Heap(espressoHeap());
  Cover C(Heap, 1);
  C.addMinterm(0);
  C.addMinterm(1);
  C.minimize();
  EXPECT_EQ(C.cubeCount(), 1u);
  EXPECT_TRUE(C.evaluate(0));
  EXPECT_TRUE(C.evaluate(1));
}

TEST(MiniEspressoTest, ProjectionMinimizesToOneCube) {
  // f(x2,x1,x0) = x0: the four minterms with x0=1 collapse to one cube.
  DieHardAllocator Heap(espressoHeap());
  Cover C(Heap, 3);
  for (uint32_t M = 0; M < 8; ++M)
    if (M & 1)
      C.addMinterm(M);
  C.minimize();
  EXPECT_EQ(C.cubeCount(), 1u);
  for (uint32_t M = 0; M < 8; ++M)
    EXPECT_EQ(C.evaluate(M), (M & 1) != 0) << M;
}

TEST(MiniEspressoTest, XorCannotMinimizeBelowTwoCubes) {
  // f(x1,x0) = x1 xor x0 has minimum two-level cover size 2.
  DieHardAllocator Heap(espressoHeap());
  Cover C(Heap, 2);
  C.addMinterm(0b01);
  C.addMinterm(0b10);
  C.minimize();
  EXPECT_EQ(C.cubeCount(), 2u);
  EXPECT_FALSE(C.evaluate(0b00));
  EXPECT_TRUE(C.evaluate(0b01));
  EXPECT_TRUE(C.evaluate(0b10));
  EXPECT_FALSE(C.evaluate(0b11));
}

TEST(MiniEspressoTest, DuplicatesAndContainmentRemoved) {
  DieHardAllocator Heap(espressoHeap());
  Cover C(Heap, 4);
  C.addMinterm(5);
  C.addMinterm(5); // Duplicate.
  // A cube covering minterm 5 (don't-care everywhere): subsumes both.
  C.addCube(0xFF);
  C.minimize();
  EXPECT_EQ(C.cubeCount(), 1u);
  for (uint32_t M = 0; M < 16; ++M)
    EXPECT_TRUE(C.evaluate(M));
}

TEST(MiniEspressoTest, FullDomainCollapsesToOneCube) {
  // All 2^4 minterms = constant true: Quine-McCluskey reduces to the
  // universal cube through repeated adjacency merges.
  DieHardAllocator Heap(espressoHeap());
  Cover C(Heap, 4);
  for (uint32_t M = 0; M < 16; ++M)
    C.addMinterm(M);
  C.minimize();
  EXPECT_EQ(C.cubeCount(), 1u);
}

TEST(MiniEspressoTest, MinimizationPreservesRandomFunctions) {
  DieHardAllocator Heap(espressoHeap());
  Rng Rand(42);
  for (int Trial = 0; Trial < 40; ++Trial) {
    int Vars = 2 + static_cast<int>(Rand.nextBounded(5)); // 2..6.
    uint32_t Domain = uint32_t(1) << Vars;
    Cover C(Heap, Vars);
    std::vector<bool> OnSet(Domain, false);
    uint32_t Minterms = 1 + Rand.nextBounded(Domain);
    for (uint32_t M = 0; M < Minterms; ++M) {
      uint32_t Pick = Rand.nextBounded(Domain);
      OnSet[Pick] = true;
      C.addMinterm(Pick);
    }
    size_t Before = C.cubeCount();
    C.minimize();
    EXPECT_LE(C.cubeCount(), Before);
    for (uint32_t M = 0; M < Domain; ++M)
      ASSERT_EQ(C.evaluate(M), static_cast<bool>(OnSet[M]))
          << "trial " << Trial << " minterm " << M;
  }
}

TEST(MiniEspressoTest, CubesAreFreedOnDestruction) {
  DieHardAllocator Heap(espressoHeap());
  {
    Cover C(Heap, 8);
    for (uint32_t M = 0; M < 200; ++M)
      C.addMinterm(M & 0xFF);
    C.minimize();
  }
  EXPECT_EQ(Heap.heap().bytesLive(), 0u);
}

TEST(MiniEspressoTest, WorkloadChecksumAllocatorIndependent) {
  DieHardAllocator A(espressoHeap(1)), B(espressoHeap(2));
  LeaAllocator Lea(64 << 20);
  SystemAllocator System;
  uint64_t Reference = runEspressoWorkload(System, 30, 8, 40, 0xE5);
  ASSERT_NE(Reference, 0u) << "verification inside the workload failed";
  EXPECT_EQ(runEspressoWorkload(A, 30, 8, 40, 0xE5), Reference);
  EXPECT_EQ(runEspressoWorkload(B, 30, 8, 40, 0xE5), Reference);
  EXPECT_EQ(runEspressoWorkload(Lea, 30, 8, 40, 0xE5), Reference);
}

TEST(MiniEspressoTest, WorkloadChurnsTheAllocator) {
  DieHardAllocator Heap(espressoHeap());
  runEspressoWorkload(Heap, 20, 8, 60, 0x11);
  // 20 functions x 60 minterms, plus merge-created cubes: > 1200 cubes.
  EXPECT_GT(Heap.heap().stats().Allocations, 1200u);
  EXPECT_EQ(Heap.heap().bytesLive(), 0u);
}

} // namespace
} // namespace diehard
