//===- tests/apps/MiniAppsTest.cpp ----------------------------------------===//
//
// Part of the DieHard reproduction (Berger & Zorn, PLDI 2006).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Tests for the miniature application workloads.
///
//===----------------------------------------------------------------------===//

#include "apps/MiniCfrac.h"
#include "apps/MiniLindsay.h"

#include "baselines/DieHardAllocator.h"
#include "baselines/LeaAllocator.h"
#include "core/DieHardHeap.h"
#include "core/HeapAdapter.h"
#include "replication/Replication.h"

#include <gtest/gtest.h>

namespace diehard {
namespace {

DieHardOptions appHeap(uint64_t Seed = 0xA995) {
  DieHardOptions O;
  O.HeapSize = 96 * 1024 * 1024;
  O.Seed = Seed;
  return O;
}

// --- MiniCfrac ---

TEST(MiniCfracTest, GoldenRatioConvergentsAreFibonacci) {
  // [1; 1, 1, 1, ...] has convergents F(k+1)/F(k).
  DieHardAllocator Heap(appHeap());
  std::vector<uint32_t> Ones(20, 1);
  Convergent C = foldConvergent(Heap, Ones);
  EXPECT_EQ(C.P.toDecimal(), "10946"); // F(21).
  EXPECT_EQ(C.Q.toDecimal(), "6765");  // F(20).
}

TEST(MiniCfracTest, Sqrt2ExpansionIsPeriodic) {
  // sqrt(2) = [1; 2, 2, 2, ...].
  std::vector<uint32_t> Terms = sqrtContinuedFraction(2, 10);
  EXPECT_EQ(Terms[0], 1u);
  for (size_t K = 1; K < Terms.size(); ++K)
    EXPECT_EQ(Terms[K], 2u) << K;
}

TEST(MiniCfracTest, Sqrt23ExpansionMatchesKnownPeriod) {
  // sqrt(23) = [4; 1, 3, 1, 8, 1, 3, 1, 8, ...].
  std::vector<uint32_t> Terms = sqrtContinuedFraction(23, 9);
  const uint32_t Expected[] = {4, 1, 3, 1, 8, 1, 3, 1, 8};
  for (size_t K = 0; K < 9; ++K)
    EXPECT_EQ(Terms[K], Expected[K]) << K;
}

TEST(MiniCfracTest, PerfectSquareTerminates) {
  std::vector<uint32_t> Terms = sqrtContinuedFraction(49, 5);
  EXPECT_EQ(Terms[0], 7u);
}

TEST(MiniCfracTest, PellEquationHoldsForConvergents) {
  // For sqrt(N), convergents at the period satisfy p^2 - N q^2 = ±1
  // (Pell). Check p^2 - 2 q^2 = ±1 for sqrt(2) prefixes.
  DieHardAllocator Heap(appHeap());
  for (int Len : {2, 3, 4, 5, 6, 7, 8}) {
    std::vector<uint32_t> Terms = sqrtContinuedFraction(2, Len);
    Convergent C = foldConvergent(Heap, Terms);
    uint64_t P = C.P.low64(), Q = C.Q.low64();
    // |p^2 - 2 q^2| == 1 for every convergent of sqrt(2).
    int64_t Residue = static_cast<int64_t>(P * P) -
                      2 * static_cast<int64_t>(Q * Q);
    EXPECT_TRUE(Residue == 1 || Residue == -1)
        << "length " << Len << " residue " << Residue;
  }
}

TEST(MiniCfracTest, WorkloadChecksumAllocatorIndependent) {
  DieHardAllocator A(appHeap(1));
  DieHardAllocator B(appHeap(999));
  LeaAllocator Lea(128 << 20);
  SystemAllocator System;
  uint64_t Reference = runCfracWorkload(System, 20, 120, 0xC0FFEE);
  EXPECT_EQ(runCfracWorkload(A, 20, 120, 0xC0FFEE), Reference);
  EXPECT_EQ(runCfracWorkload(B, 20, 120, 0xC0FFEE), Reference);
  EXPECT_EQ(runCfracWorkload(Lea, 20, 120, 0xC0FFEE), Reference);
}

TEST(MiniCfracTest, WorkloadLeavesHeapEmpty) {
  DieHardAllocator Heap(appHeap());
  runCfracWorkload(Heap, 10, 80, 0x5EED);
  EXPECT_EQ(Heap.heap().bytesLive(), 0u);
  EXPECT_GT(Heap.heap().stats().Allocations, 1000u)
      << "the driver must actually churn";
}

// --- MiniLindsay ---

TEST(MiniLindsayTest, DeliversEveryMessage) {
  DieHardAllocator Heap(appHeap());
  LindsayConfig Config;
  Config.Messages = 500;
  LindsayResult R = runLindsay(Heap, Config);
  EXPECT_EQ(R.MessagesDelivered, 500u);
  // Hops bounded by messages * (dimensions + 1) including delivery hop.
  EXPECT_LE(R.TotalHops,
            500u * static_cast<uint64_t>(Config.Dimensions + 1));
  EXPECT_GE(R.TotalHops, 500u);
  EXPECT_EQ(Heap.heap().bytesLive(), 0u);
}

TEST(MiniLindsayTest, CorrectModeIsAllocatorIndependent) {
  LindsayConfig Config;
  Config.Messages = 800;
  DieHardAllocator A(appHeap(7));
  DieHardAllocator B(appHeap(77));
  SystemAllocator System;
  uint64_t Reference = runLindsay(System, Config).RoutingSummary;
  EXPECT_EQ(runLindsay(A, Config).RoutingSummary, Reference);
  EXPECT_EQ(runLindsay(B, Config).RoutingSummary, Reference);
}

TEST(MiniLindsayTest, BuggyModeDivergesAcrossRandomFillHeaps) {
  // With replicated-mode heaps (random object fill), the uninitialized
  // Priority read yields different summaries under different seeds.
  LindsayConfig Config;
  Config.Messages = 200;
  Config.BuggyUninitRead = true;
  DieHardOptions OA = appHeap(100), OB = appHeap(200);
  OA.RandomFillObjects = OB.RandomFillObjects = true;
  DieHardAllocator A(OA), B(OB);
  EXPECT_NE(runLindsay(A, Config).RoutingSummary,
            runLindsay(B, Config).RoutingSummary);
}

TEST(MiniLindsayTest, ReplicatedVoterCatchesTheLindsayBug) {
  // The paper's Section 7.2.3 anecdote end-to-end: replicated DieHard
  // detects lindsay's uninitialized read and terminates.
  ReplicationOptions RO;
  RO.Replicas = 3;
  RO.MasterSeed = 0x11D5;
  RO.HeapSize = 48 * 1024 * 1024;
  ReplicaManager Manager(RO);

  auto Body = [](bool Buggy) {
    return [Buggy](ReplicaContext &Ctx) {
      DieHardHeap Heap(Ctx.heapOptions());
      HeapAdapter Adapter(Heap, "lindsay");
      LindsayConfig Config;
      Config.Messages = 300;
      Config.BuggyUninitRead = Buggy;
      LindsayResult R = runLindsay(Adapter, Config);
      char Line[32];
      int N = std::snprintf(Line, sizeof(Line), "%016llx\n",
                            static_cast<unsigned long long>(
                                R.RoutingSummary));
      Ctx.write(Line, static_cast<size_t>(N));
      return 0;
    };
  };

  ReplicationResult Correct = Manager.run(Body(false), "");
  EXPECT_TRUE(Correct.Success) << "fixed lindsay agrees";

  ReplicationResult Buggy = Manager.run(Body(true), "");
  EXPECT_FALSE(Buggy.Success);
  EXPECT_TRUE(Buggy.UninitReadDetected)
      << "replicated DieHard must catch lindsay's uninitialized read";
}

} // namespace
} // namespace diehard
